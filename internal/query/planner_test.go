package query

import (
	"fmt"
	"strings"
	"testing"

	"apex/internal/core"
	"apex/internal/storage"
	"apex/internal/xmlgraph"
)

// TestSelectPlan table-tests the pure plan selection: anchor position,
// direction, and per-stage kernels from synthetic statistics.
func TestSelectPlan(t *testing.T) {
	cov := func(pairs, ends, starts int64) posStats {
		return posStats{Pairs: pairs, Ends: ends, Starts: starts, Extents: 1, Covered: true}
	}
	unc := func(pairs, ends int64) posStats {
		return posStats{Pairs: pairs, Ends: ends, Extents: 1}
	}
	cases := []struct {
		name         string
		stats        []posStats
		wantAnchor   int
		wantBackward bool
	}{
		{name: "empty", stats: nil, wantAnchor: 0},
		{name: "single position", stats: []posStats{unc(10, 10)}, wantAnchor: 0},
		{
			// Position 1 not covered: no exact seed exists anywhere.
			name:       "uncovered prefix",
			stats:      []posStats{unc(100, 50), unc(100, 50), unc(100, 50)},
			wantAnchor: 0,
		},
		{
			// Deepest covered position wins: seeding at 2 skips position 1's
			// scan and position 2's merge.
			name:       "anchor at deepest covered",
			stats:      []posStats{cov(100, 50, 40), cov(80, 40, 30), unc(60, 30)},
			wantAnchor: 2,
		},
		{
			// An empty covered position cannot seed (and proves nothing about
			// where the legacy kernel exits) — anchoring stops before it.
			name:       "empty covered position stops the scan",
			stats:      []posStats{cov(100, 50, 40), cov(0, 0, 0), unc(60, 30)},
			wantAnchor: 1,
		},
		{
			// Suffix binds ~2 nodes against a 10k-node forward seed: go
			// backward, re-anchored at position 1's small exact set.
			name: "backward on selective suffix",
			stats: []posStats{
				cov(1000, 500, 400),
				cov(15000, 9000, 8000),
				cov(20000, 10000, 9000),
				unc(40, 2),
			},
			wantAnchor:   1,
			wantBackward: true,
		},
		{
			// Same shape but the suffix binds as much as the anchor: stay
			// forward from the deepest covered position.
			name: "forward when suffix is not selective",
			stats: []posStats{
				cov(1000, 500, 400),
				cov(15000, 9000, 8000),
				cov(20000, 10000, 9000),
				unc(13000, 8000),
			},
			wantAnchor:   3,
			wantBackward: false,
		},
		{
			// Backward needs every intermediate position covered: the bind
			// pass cannot prove cost parity across an uncovered gap.
			name: "no backward across uncovered intermediate",
			stats: []posStats{
				cov(20000, 10000, 9000),
				cov(15000, 9000, 8000),
				unc(500, 400),
				unc(40, 2),
			},
			wantAnchor:   2,
			wantBackward: false,
		},
		{
			// One remaining stage is below the backward minimum (the bind
			// pass would sweep the same extents the single join touches).
			name: "no backward with one stage left",
			stats: []posStats{
				cov(20000, 10000, 9000),
				cov(15000, 9000, 8000),
				unc(40, 2),
			},
			wantAnchor:   2,
			wantBackward: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			anchor, backward, stages := selectPlan(tc.stats, defaultParallelThreshold)
			if anchor != tc.wantAnchor {
				t.Fatalf("anchor = %d, want %d", anchor, tc.wantAnchor)
			}
			if backward != tc.wantBackward {
				t.Fatalf("backward = %v, want %v", backward, tc.wantBackward)
			}
			if anchor > 0 && len(stages) != len(tc.stats)-anchor {
				t.Fatalf("got %d stages, want %d", len(stages), len(tc.stats)-anchor)
			}
		})
	}
}

// TestSelectPlanFanout pins the fan-out threshold decision per stage.
func TestSelectPlanFanout(t *testing.T) {
	stats := []posStats{
		{Pairs: 10, Ends: 5, Starts: 5, Extents: 1, Covered: true},
		{Pairs: 10, Ends: 5, Extents: 1},    // tiny: serial
		{Pairs: 5000, Ends: 50, Extents: 1}, // big: fan out at threshold 4096
	}
	anchor, _, stages := selectPlan(stats, 4096)
	if anchor != 1 {
		t.Fatalf("anchor = %d, want 1", anchor)
	}
	if stages[0].fanout {
		t.Fatal("stage over 10 pairs should not dispatch the pool")
	}
	if !stages[1].fanout {
		t.Fatal("stage over 5000 pairs should dispatch the pool")
	}
}

// TestChooseStageKernel pins the kernel cost comparison at its extremes: a
// huge candidate set against many small extents goes to the hash probe
// (bitmap mark once, stream pairs once), skewed single-extent merges stay on
// the gallop merge.
func TestChooseStageKernel(t *testing.T) {
	cases := []struct {
		allowed, pairs, extents int64
		want                    kernel
	}{
		// Many near-empty extents each restarting a merge cursor against a
		// comparable candidate set: the single bitmap mark + stream wins.
		{allowed: 1024, pairs: 2048, extents: 4096, want: kernelHash},
		// Skewed single extent: galloping skips most of the big side.
		{allowed: 100, pairs: 100000, extents: 1, want: kernelMerge},
		{allowed: 8, pairs: 64, extents: 1, want: kernelMerge},
		// Huge candidate set against few pairs: marking the bitmap alone
		// costs more than the merge, however many extents.
		{allowed: 100000, pairs: 3000, extents: 600, want: kernelMerge},
	}
	for _, tc := range cases {
		if got := chooseStageKernel(tc.allowed, tc.pairs, tc.extents); got != tc.want {
			t.Errorf("chooseStageKernel(%d, %d, %d) = %c, want %c",
				tc.allowed, tc.pairs, tc.extents, got.letter(), tc.want.letter())
		}
	}
}

// TestLRUCacheEviction pins the bounded-LRU mechanics the plan and leg caches
// share: recency order, capacity eviction, and the eviction counter.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok { // refresh a: b is now the eviction victim
		t.Fatal("a missing before capacity was reached")
	}
	c.put("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived: it was refreshed before c arrived")
	}
	if c.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions)
	}
	c.flush()
	if _, ok := c.get("a"); ok {
		t.Fatal("flush must empty the cache")
	}
}

// plannedFixture builds an APEX0 evaluator over the Hamlet fixture — deep
// enough (//ACT/SCENE/SPEECH/LINE is length 4, required paths only reach
// length 2) that QTYPE1 joins engage the planner.
func plannedFixture(t *testing.T) (*xmlgraph.Graph, *core.APEX, *APEXEvaluator) {
	t.Helper()
	g := playGraph(t)
	dt, err := storage.BuildDataTable(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	idx := core.BuildAPEX0(g)
	return g, idx, NewAPEXEvaluator(idx, dt)
}

// TestPlannerMatchesLegacyOnFixture is the quick in-package parity check (the
// nine-dataset property test lives in the differential harness): identical
// results and identical logical cost with the planner on and off.
func TestPlannerMatchesLegacyOnFixture(t *testing.T) {
	_, _, ap := plannedFixture(t)
	queries := []string{
		"//ACT/SCENE/SPEECH",
		"//ACT/SCENE/SPEECH/LINE",
		"//ACT/SCENE/SPEECH/SPEAKER",
		"//PLAY/ACT/SCENE/SPEECH/LINE",
		"//ACT//LINE",
		"//SCENE/SPEECH/nosuch",
		"//nosuch/SCENE/SPEECH",
	}
	for _, s := range queries {
		q := MustParse(s)
		on, trOn, err := ap.EvaluateTrace(q)
		if err != nil {
			t.Fatalf("planner-on %s: %v", s, err)
		}
		ap.DisablePlanner = true
		off, trOff, err := ap.EvaluateTrace(q)
		ap.DisablePlanner = false
		if err != nil {
			t.Fatalf("planner-off %s: %v", s, err)
		}
		if len(on) != len(off) {
			t.Fatalf("%s: planner-on %d nodes, planner-off %d nodes", s, len(on), len(off))
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("%s: results diverge at %d: on=%d off=%d", s, i, on[i], off[i])
			}
		}
		if trOn.Total != trOff.Total {
			t.Fatalf("%s: logical cost differs:\non:  %+v\noff: %+v", s, trOn.Total, trOff.Total)
		}
	}
	st := ap.PlanStats()
	if st.Forward+st.Backward+st.Fallbacks == 0 {
		t.Fatal("no planned executions recorded: the fixture never reached the planner")
	}
	if st.PlanMisses == 0 {
		t.Fatal("no plan-cache misses recorded")
	}
}

// TestPlanCacheHitsOnRepeat verifies the plan cache answers repeated joins:
// second and later evaluations of the same path must hit, not rebuild.
func TestPlanCacheHitsOnRepeat(t *testing.T) {
	_, _, ap := plannedFixture(t)
	q := MustParse("//ACT/SCENE/SPEECH/LINE")
	for i := 0; i < 5; i++ {
		if _, err := ap.Evaluate(q); err != nil {
			t.Fatal(err)
		}
	}
	st := ap.PlanStats()
	if st.PlanMisses != 1 {
		t.Fatalf("plan misses = %d, want exactly 1 for a repeated identical join", st.PlanMisses)
	}
	if st.PlanHits < 4 {
		t.Fatalf("plan hits = %d, want >= 4", st.PlanHits)
	}
	if hr := st.HitRate(); hr < 0.8 {
		t.Fatalf("hit rate = %.2f, want >= 0.8", hr)
	}
}

// TestPlanTraceStages asserts every planner decision surfaces in the Explain
// trace: a plan stage naming anchor, direction, and kernels, and per-stage
// join records — while the stage-sum invariant keeps holding.
func TestPlanTraceStages(t *testing.T) {
	_, _, ap := plannedFixture(t)
	_, tr, err := ap.EvaluateTrace(MustParse("//ACT/SCENE/SPEECH/LINE"))
	if err != nil {
		t.Fatal(err)
	}
	var planDetail string
	for _, s := range tr.Stages {
		if s.Name == "plan" && strings.Contains(s.Detail, "anchor=") {
			planDetail = s.Detail
		}
	}
	if planDetail == "" {
		t.Fatalf("no plan stage with an anchor decision in trace: %+v", tr.Stages)
	}
	for _, want := range []string{"anchor=", "dir=", "kernels="} {
		if !strings.Contains(planDetail, want) {
			t.Fatalf("plan stage %q missing %q", planDetail, want)
		}
	}
	if got := tr.StageSum(); got != tr.Total {
		t.Fatalf("stage sum %+v != total %+v", got, tr.Total)
	}
}

// TestPlanEpochStaleness reuses one evaluator across in-place republications
// — workload adaptation, a data refresh, and a compression flip — and
// requires correct results plus a recorded cache flush each time. This is
// the invalidation path the facade's per-generation evaluator swap does not
// cover.
func TestPlanEpochStaleness(t *testing.T) {
	g, idx, ap := plannedFixture(t)
	q := MustParse("//ACT/SCENE/SPEECH/LINE")
	check := func(phase string, wantFlushes int64) {
		t.Helper()
		got, err := ap.Evaluate(q)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		want := g.EvalPartialPath(q.Path)
		if len(got) != len(want) {
			t.Fatalf("%s: got %d nodes, want %d", phase, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: diverges at %d: got %d want %d", phase, i, got[i], want[i])
			}
		}
		if st := ap.PlanStats(); st.Flushes < wantFlushes {
			t.Fatalf("%s: flushes = %d, want >= %d", phase, st.Flushes, wantFlushes)
		}
	}
	check("initial", 0)

	// Adaptation: Update republishes the extents in place.
	idx.ExtractFrequentPaths([]xmlgraph.LabelPath{
		xmlgraph.ParseLabelPath("ACT.SCENE.SPEECH"),
		xmlgraph.ParseLabelPath("ACT.SCENE.SPEECH"),
	}, 0.5)
	idx.Update()
	check("adapted", 1)

	// Data mutation: new nodes, new extent columns, same evaluator.
	if _, err := g.AppendFragment(g.Root(),
		`<ACT><SCENE><SPEECH><LINE>new line</LINE></SPEECH></SCENE></ACT>`, nil); err != nil {
		t.Fatal(err)
	}
	idx.RefreshData()
	check("refreshed", 2)

	// Compression flip: same pairs, different physical columns.
	idx.SetCompressExtents(true)
	idx.FreezeExtents()
	check("compressed", 3)
}

// TestLegCacheParity pins the cached leg enumeration: repeated QTYPE2
// evaluations must hit the leg cache and tally exactly the logical cost the
// uncached enumeration would have.
func TestLegCacheParity(t *testing.T) {
	_, _, ap := plannedFixture(t)
	q := MustParse("//ACT//LINE")
	_, tr1, err := ap.EvaluateTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	_, tr2, err := ap.EvaluateTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Total != tr2.Total {
		t.Fatalf("leg-cache hit changed the logical cost:\nmiss: %+v\nhit:  %+v", tr1.Total, tr2.Total)
	}
	st := ap.PlanStats()
	if st.LegMisses != 1 || st.LegHits < 1 {
		t.Fatalf("leg cache counters = %d misses / %d hits, want 1 miss and >= 1 hit", st.LegMisses, st.LegHits)
	}
	ap.DisablePlanner = true
	_, trOff, err := ap.EvaluateTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if trOff.Total != tr1.Total {
		t.Fatalf("cached enumeration diverges from the legacy tally:\non:  %+v\noff: %+v", tr1.Total, trOff.Total)
	}
}

// backwardFixture builds a document engineered so the backward plan fires on
// //a/b/c/e: 20 <a> parents fan out to 200 <b><c> chains, exactly one of
// which carries the rare <e> leaf. With a.b.c mined as a required path,
// positions 1..3 are covered and nonempty while the suffix binds a single
// node — the re-anchored backward pass's home ground.
func backwardFixture(t *testing.T) (*core.APEX, *APEXEvaluator) {
	t.Helper()
	var b strings.Builder
	b.WriteString("<R>")
	for i := 0; i < 20; i++ {
		b.WriteString("<a>")
		for j := 0; j < 10; j++ {
			if i == 0 && j == 0 {
				b.WriteString("<b><c><e>rare</e></c></b>")
			} else {
				b.WriteString("<b><c>common</c></b>")
			}
		}
		b.WriteString("</a>")
	}
	b.WriteString("</R>")
	g, err := xmlgraph.BuildString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := storage.BuildDataTable(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := []xmlgraph.LabelPath{
		xmlgraph.ParseLabelPath("a.b.c"),
		xmlgraph.ParseLabelPath("a.b.c"),
	}
	idx := core.BuildAPEX(g, w, 0.5)
	return idx, NewAPEXEvaluator(idx, dt)
}

// TestBackwardExecution drives the backward executor end to end, under both
// extent forms, and pins it against the legacy kernel on results and logical
// cost.
func TestBackwardExecution(t *testing.T) {
	idx, ap := backwardFixture(t)
	q := MustParse("//a/b/c/e")
	for _, compressed := range []bool{false, true} {
		if compressed {
			idx.SetCompressExtents(true)
			idx.FreezeExtents()
		}
		on, trOn, err := ap.EvaluateTrace(q)
		if err != nil {
			t.Fatal(err)
		}
		ap.DisablePlanner = true
		off, trOff, err := ap.EvaluateTrace(q)
		ap.DisablePlanner = false
		if err != nil {
			t.Fatal(err)
		}
		if len(on) != 1 || len(off) != 1 || on[0] != off[0] {
			t.Fatalf("compressed=%v: planner-on %v, planner-off %v, want one shared node", compressed, on, off)
		}
		if trOn.Total != trOff.Total {
			t.Fatalf("compressed=%v: logical cost differs:\non:  %+v\noff: %+v", compressed, trOn.Total, trOff.Total)
		}
		found := false
		for _, s := range trOn.Stages {
			if s.Name == "plan" && strings.Contains(s.Detail, "dir=backward") {
				found = true
			}
		}
		if !found {
			t.Fatalf("compressed=%v: no backward plan stage in trace: %+v", compressed, trOn.Stages)
		}
	}
	if st := ap.PlanStats(); st.Backward == 0 {
		t.Fatalf("backward executions = 0, stats: %+v", st)
	}
}

// TestHashPositionMatchesMerge pins the planned bitmap hash-probe stage
// against the merge kernel on every join position of the fixture, under both
// extent forms: identical candidate sets in identical (sorted) order.
func TestHashPositionMatchesMerge(t *testing.T) {
	_, idx, ap := plannedFixture(t)
	p := xmlgraph.ParseLabelPath("ACT.SCENE.SPEECH.LINE")
	for _, compressed := range []bool{false, true} {
		if compressed {
			idx.SetCompressExtents(true)
			idx.FreezeExtents()
		}
		var c Cost
		nodes1, _ := idx.LookupAll(p[:1])
		allowed := ap.unionEndsInto(nodes1, nil, &c)
		for j := 2; j <= len(p); j++ {
			nodesJ, _ := idx.LookupAll(p[:j])
			var ch, cm Cost
			hashed := ap.hashPosition(nodesJ, allowed, nil, &ch)
			merged := ap.mergePositionOpt(nodesJ, allowed, nil, &cm, false)
			if len(hashed) != len(merged) {
				t.Fatalf("compressed=%v position %d: hash %d ids, merge %d ids", compressed, j, len(hashed), len(merged))
			}
			for i := range hashed {
				if hashed[i] != merged[i] {
					t.Fatalf("compressed=%v position %d: kernels diverge at %d: hash %d, merge %d",
						compressed, j, i, hashed[i], merged[i])
				}
			}
			if ch.ExtentEdges != cm.ExtentEdges || ch.JoinProbes != cm.JoinProbes {
				t.Fatalf("compressed=%v position %d: kernel tallies differ: hash %+v, merge %+v", compressed, j, ch, cm)
			}
			allowed = merged
		}
	}
}

// TestOrderLegsDeterministic pins the cheapest-first leg ordering: stable
// under repetition and a permutation of the whole leg set, ties broken
// lexicographically.
func TestOrderLegsDeterministic(t *testing.T) {
	_, _, ap := plannedFixture(t)
	legs := ap.enumerateLegs("ACT", "LINE", &Cost{})
	if len(legs) == 0 {
		t.Fatal("fixture has no ACT//LINE legs")
	}
	a := ap.orderLegs(append([]string(nil), legs...))
	rev := make([]string, len(legs))
	for i, s := range legs {
		rev[len(legs)-1-i] = s
	}
	b := ap.orderLegs(rev)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("ordering depends on input order:\n%v\n%v", a, b)
	}
}
