package bench

import (
	"time"

	"apex/internal/asr"
	"apex/internal/query"
	"apex/internal/xmlgraph"
)

// MixedComparison measures the QMIXED extension: general mixed-axis
// queries evaluated over APEX (gap rewriting + joins) and the strong
// DataGuide (summary×NFA product).
type MixedComparison struct {
	Dataset   string
	Queries   int
	APEX      RunResult
	SDG       RunResult
	ResultsOK bool
}

// CompareMixed runs the mixed-axis extension experiment on one dataset.
func (e *Env) CompareMixed(dataset string, n int) (MixedComparison, error) {
	s, err := e.site(dataset)
	if err != nil {
		return MixedComparison{}, err
	}
	qs := s.gen.QMixed(n)
	ap := query.NewAPEXEvaluator(s.buildAPEX(e.cfg.FixedMinSup), s.dt)
	apRun, err := runBatch(ap, qs)
	if err != nil {
		return MixedComparison{}, err
	}
	sdg := query.NewSummaryEvaluator("SDG", s.dataguide(), s.ds.Graph, s.dt)
	sdgRun, err := runBatch(sdg, qs)
	if err != nil {
		return MixedComparison{}, err
	}
	return MixedComparison{
		Dataset:   dataset,
		Queries:   n,
		APEX:      apRun,
		SDG:       sdgRun,
		ResultsOK: apRun.Results == sdgRun.Results,
	}, nil
}

func parseAll(ss []string) []xmlgraph.LabelPath {
	res := make([]xmlgraph.LabelPath, len(ss))
	for i, s := range ss {
		res[i] = xmlgraph.ParseLabelPath(s)
	}
	return res
}

// ASRComparison is the extension experiment motivated by Section 2's
// discussion of access support relations: materialize exactly the
// workload's frequent paths as ASRs, run the full QTYPE1 population, and
// contrast the predefined-path cliff (fallback scans) with APEX, which
// always keeps the length-≤2 paths.
type ASRComparison struct {
	Dataset       string
	Relations     int
	Tuples        int
	ASRCost       int64
	ASRFallbacks  int64
	ASRElapsed    time.Duration
	APEXCost      int64
	APEXElapsed   time.Duration
	ResultsAgreed bool
}

// CompareASR runs the ASR-vs-APEX extension experiment on one dataset.
func (e *Env) CompareASR(dataset string) (ASRComparison, error) {
	s, err := e.site(dataset)
	if err != nil {
		return ASRComparison{}, err
	}
	idx := s.buildAPEX(e.cfg.FixedMinSup)
	// Materialize the same required paths APEX mined (length ≥ 2; ASRs for
	// single labels would just be edge lists).
	// Materialize only the designated chains (length ≥ 2): an ASR setup
	// picks important reference chains, it does not shadow every label —
	// that is precisely the "predefined subsets of paths" limitation. APEX
	// keeps the length-1 paths for free, so uncovered queries degrade to
	// joins instead of data scans.
	var chains []xmlgraph.LabelPath
	for _, p := range parseAll(idx.RequiredPaths()) {
		if p.Len() >= 2 {
			chains = append(chains, p)
		}
	}
	rels := asr.Build(s.ds.Graph, chains)

	var asrCost asr.Cost
	asrStart := time.Now()
	var asrResults int64
	for _, q := range s.q1 {
		asrResults += int64(len(rels.EvalPath(q.Path, &asrCost)))
	}
	asrElapsed := time.Since(asrStart)

	ev := query.NewAPEXEvaluator(idx, s.dt)
	apexRun, err := runBatch(ev, s.q1)
	if err != nil {
		return ASRComparison{}, err
	}
	return ASRComparison{
		Dataset:       dataset,
		Relations:     len(rels.Relations()),
		Tuples:        rels.TupleCount(),
		ASRCost:       asrCost.Total(),
		ASRFallbacks:  asrCost.Fallbacks,
		ASRElapsed:    asrElapsed,
		APEXCost:      apexRun.Cost.Total(),
		APEXElapsed:   apexRun.Elapsed,
		ResultsAgreed: asrResults == apexRun.Results,
	}, nil
}
