// Package bench drives the paper's experiments (Section 6): it builds the
// nine Table 1 data sets, the competing indexes, and the three query
// populations, runs the measurements behind Table 2 and Figures 13–15, and
// returns typed rows the CLI and the testing.B benchmarks render.
//
// Absolute wall-clock numbers from the paper's 2002 testbed are not
// reproducible; each run therefore reports both Go wall time and the
// logical cost counters of the query package, and EXPERIMENTS.md compares
// shapes (who wins, by what factor) rather than seconds.
package bench

import (
	"fmt"
	"sync"
	"time"

	"apex/internal/core"
	"apex/internal/datagen"
	"apex/internal/dataguide"
	"apex/internal/fabric"
	"apex/internal/oneindex"
	"apex/internal/query"
	"apex/internal/storage"
	"apex/internal/workload"
	"apex/internal/xmlgraph"
)

// Config parameterizes an experiment run. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Scale multiplies the paper's data set sizes (1.0 ≈ Table 1).
	Scale float64
	// NumQ1, NumQ2, NumQ3 size the query populations (paper: 5000, 500,
	// 1000).
	NumQ1, NumQ2, NumQ3 int
	// WorkloadFrac is the share of QTYPE1 queries used as the mining
	// workload (paper: 0.2).
	WorkloadFrac float64
	// MinSups is the minSup sweep of Table 2 and Figure 13.
	MinSups []float64
	// FixedMinSup is the single value of Figures 14 and 15 (paper: 0.005).
	FixedMinSup float64
	// Seed drives all query sampling.
	Seed int64
}

// DefaultConfig mirrors the paper's protocol at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{
		Scale:        0.05,
		NumQ1:        1000,
		NumQ2:        100,
		NumQ3:        200,
		WorkloadFrac: 0.2,
		MinSups:      []float64{0.002, 0.005, 0.01, 0.03, 0.05},
		FixedMinSup:  0.005,
		Seed:         1,
	}
}

// PaperConfig is the full-size protocol (minutes to hours, like the
// original experiments).
func PaperConfig() Config {
	c := DefaultConfig()
	c.Scale = 1.0
	c.NumQ1, c.NumQ2, c.NumQ3 = 5000, 500, 1000
	return c
}

// Env caches per-dataset artifacts so the experiments share builds.
type Env struct {
	cfg Config

	mu   sync.Mutex
	data map[string]*siteData
}

// siteData bundles everything built for one dataset.
type siteData struct {
	ds  *datagen.Dataset
	dt  *storage.DataTable
	gen *workload.Generator

	q1 []query.Query
	q2 []query.Query
	q3 []query.Query
	wl []xmlgraph.LabelPath

	sdg *dataguide.DataGuide
	oix *oneindex.OneIndex
	fab *fabric.Fabric
}

// NewEnv creates an experiment environment for cfg.
func NewEnv(cfg Config) *Env {
	return &Env{cfg: cfg, data: make(map[string]*siteData)}
}

// Config returns the environment's configuration.
func (e *Env) Config() Config { return e.cfg }

func (e *Env) site(name string) (*siteData, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.data[name]; ok {
		return s, nil
	}
	ds, err := datagen.LoadDataset(name, e.cfg.Scale)
	if err != nil {
		return nil, err
	}
	dt, err := storage.BuildDataTable(ds.Graph, 0, 64)
	if err != nil {
		return nil, err
	}
	gen := workload.New(ds.Graph, e.cfg.Seed)
	s := &siteData{
		ds:  ds,
		dt:  dt,
		gen: gen,
		q1:  gen.QType1(e.cfg.NumQ1),
		q2:  gen.QType2(e.cfg.NumQ2),
		q3:  gen.QType3(e.cfg.NumQ3),
	}
	s.wl = workload.SampleWorkload(s.q1, e.cfg.WorkloadFrac, e.cfg.Seed)
	e.data[name] = s
	return s, nil
}

func (s *siteData) dataguide() *dataguide.DataGuide {
	if s.sdg == nil {
		s.sdg = dataguide.Build(s.ds.Graph)
	}
	return s.sdg
}

func (s *siteData) oneindex() *oneindex.OneIndex {
	if s.oix == nil {
		s.oix = oneindex.Build(s.ds.Graph)
	}
	return s.oix
}

func (s *siteData) fabric() *fabric.Fabric {
	if s.fab == nil {
		s.fab = fabric.Build(s.ds.Graph, nil)
	}
	return s.fab
}

// buildAPEX builds an adapted APEX for the site's workload at minSup.
func (s *siteData) buildAPEX(minSup float64) *core.APEX {
	return core.BuildAPEX(s.ds.Graph, s.wl, minSup)
}

// buildAPEX0 builds the workload-free initial index.
func (s *siteData) buildAPEX0() *core.APEX { return core.BuildAPEX0(s.ds.Graph) }

// RunResult is one (index, query batch) measurement.
type RunResult struct {
	Index   string
	Elapsed time.Duration
	Cost    query.Cost
	Results int64
}

func (r RunResult) String() string {
	return fmt.Sprintf("%-12s %10v cost=%d results=%d", r.Index, r.Elapsed.Round(time.Microsecond), r.Cost.Total(), r.Results)
}

// runBatch evaluates a query batch and snapshots cost and wall time.
func runBatch(ev query.Evaluator, qs []query.Query) (RunResult, error) {
	ev.ResetCost()
	start := time.Now()
	var results int64
	for _, q := range qs {
		res, err := ev.Evaluate(q)
		if err != nil {
			return RunResult{}, fmt.Errorf("%s on %s: %w", ev.Name(), q, err)
		}
		results += int64(len(res))
	}
	return RunResult{
		Index:   ev.Name(),
		Elapsed: time.Since(start),
		Cost:    *ev.Cost(),
		Results: results,
	}, nil
}
