package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"apex/internal/core"
	"apex/internal/datagen"
	"apex/internal/query"
)

// The footprint experiment measures what the block-compressed serving form
// buys and what it costs: bytes per frozen-extent edge under both forms on
// every Table 1 dataset, the resident size of the largest dataset's index
// at ten times the default benchmark scale, and the merge-join latency
// delta between the forms on the same adapted index and queries. The
// logical cost counters are form-independent by construction, so each row
// also asserts the two forms agreed on results and cost.

// FootprintRow is one dataset's flat-versus-compressed measurement.
type FootprintRow struct {
	Dataset string `json:"dataset"`
	Edges   int    `json:"edges"`
	Extents int    `json:"extents"`
	Blocks  int    `json:"blocks"`
	// FlatBytes and CompressedBytes are the frozen serving columns' sizes.
	FlatBytes       int `json:"flat_bytes"`
	CompressedBytes int `json:"compressed_bytes"`
	// FlatBPE and CompressedBPE are the per-edge quotients; Ratio is
	// compressed over flat (lower is better).
	FlatBPE       float64 `json:"flat_bytes_per_edge"`
	CompressedBPE float64 `json:"compressed_bytes_per_edge"`
	Ratio         float64 `json:"ratio"`
	// FlatElapsed and CompressedElapsed time one QTYPE1 workload pass under
	// each form (merge kernel, fast path disabled, parallelism 1);
	// LatencyRatio is compressed over flat.
	FlatElapsed       time.Duration `json:"flat_elapsed_ns"`
	CompressedElapsed time.Duration `json:"compressed_elapsed_ns"`
	LatencyRatio      float64       `json:"latency_ratio"`
	// Agreed records that both forms returned identical result volumes and
	// logical cost totals.
	Agreed bool `json:"agreed"`
}

// FootprintMax is the max-dataset-in-RAM measurement: the footprint preset
// (the largest Table 1 file at ~10× the default scale) built once, with the
// index's resident serving bytes under each form.
type FootprintMax struct {
	Dataset         string  `json:"dataset"`
	Scale           float64 `json:"scale"`
	GraphNodes      int     `json:"graph_nodes"`
	Edges           int     `json:"edges"`
	FlatBytes       int     `json:"flat_bytes"`
	CompressedBytes int     `json:"compressed_bytes"`
	CompressedBPE   float64 `json:"compressed_bytes_per_edge"`
	// HeapFlat and HeapCompressed snapshot the process heap after a GC with
	// the index resident in each form — the end-to-end view the per-column
	// accounting approximates.
	HeapFlat       uint64 `json:"heap_flat_bytes"`
	HeapCompressed uint64 `json:"heap_compressed_bytes"`
}

// FootprintReport is the full sweep plus the 10× measurement.
type FootprintReport struct {
	Scale float64        `json:"scale"`
	Rows  []FootprintRow `json:"rows"`
	Max   *FootprintMax  `json:"max,omitempty"`
	// MeanCompressedBPE is the headline: the arithmetic mean of the
	// compressed bytes-per-edge across all rows (acceptance bar: 12).
	MeanCompressedBPE float64 `json:"mean_compressed_bytes_per_edge"`
	// GeomeanLatencyRatio summarizes the serving cost of compression
	// (acceptance bar: within 15% of flat).
	GeomeanLatencyRatio float64 `json:"geomean_latency_ratio"`
}

// Footprint runs the sweep over the named datasets (all nine when names is
// empty), then the 10× max-dataset measurement unless skipMax is set (tests
// skip it to stay fast).
func (e *Env) Footprint(names []string, skipMax bool) (FootprintReport, error) {
	if len(names) == 0 {
		names = datagen.DatasetNames()
	}
	rep := FootprintReport{Scale: e.cfg.Scale}
	var bpeSum, logLatSum float64
	var latN int
	for _, name := range names {
		s, err := e.site(name)
		if err != nil {
			return rep, err
		}
		idx := s.buildAPEX(e.cfg.FixedMinSup)
		row := FootprintRow{Dataset: name}

		flat := idx.Footprint()
		row.Edges, row.Extents = flat.Edges, flat.Extents
		row.FlatBytes = flat.Bytes

		flatPass, err := footprintPass(idx, s, s.q1)
		if err != nil {
			return rep, err
		}
		row.FlatElapsed = flatPass.elapsed

		idx.SetCompressExtents(true)
		idx.FreezeExtents()
		comp := idx.Footprint()
		row.CompressedBytes = comp.Bytes
		row.Blocks = comp.Blocks
		compPass, err := footprintPass(idx, s, s.q1)
		if err != nil {
			return rep, err
		}
		row.CompressedElapsed = compPass.elapsed
		idx.SetCompressExtents(false)
		idx.FreezeExtents()

		if row.Edges > 0 {
			row.FlatBPE = float64(row.FlatBytes) / float64(row.Edges)
			row.CompressedBPE = float64(row.CompressedBytes) / float64(row.Edges)
		}
		if row.FlatBytes > 0 {
			row.Ratio = float64(row.CompressedBytes) / float64(row.FlatBytes)
		}
		if row.FlatElapsed > 0 {
			row.LatencyRatio = float64(row.CompressedElapsed) / float64(row.FlatElapsed)
			logLatSum += math.Log(row.LatencyRatio)
			latN++
		}
		row.Agreed = flatPass.results == compPass.results && flatPass.cost == compPass.cost
		if !row.Agreed {
			return rep, fmt.Errorf("bench: footprint forms disagree on %s: flat(results=%d cost=%d) compressed(results=%d cost=%d)",
				name, flatPass.results, flatPass.cost, compPass.results, compPass.cost)
		}
		bpeSum += row.CompressedBPE
		rep.Rows = append(rep.Rows, row)
	}
	if len(rep.Rows) > 0 {
		rep.MeanCompressedBPE = bpeSum / float64(len(rep.Rows))
	}
	if latN > 0 {
		rep.GeomeanLatencyRatio = math.Exp(logLatSum / float64(latN))
	}
	if !skipMax {
		max, err := footprintMax()
		if err != nil {
			return rep, err
		}
		rep.Max = max
	}
	return rep, nil
}

type footprintPassResult struct {
	elapsed time.Duration
	results int64
	cost    int64
}

// footprintPass times one warm QTYPE1 workload pass under the index's
// current serving form. The fast path is disabled so the measurement is
// join latency — the acceptance criterion for the compressed form — with
// every query exercising the merge kernel's block cursor rather than the
// frozen-ends copy.
func footprintPass(idx *core.APEX, s *siteData, qs []query.Query) (footprintPassResult, error) {
	ev := query.NewAPEXEvaluator(idx, s.dt)
	ev.SetParallelism(1)
	ev.DisableFastPath = true
	pass := func() (int64, error) {
		var results int64
		for _, q := range qs {
			res, err := ev.Evaluate(q)
			if err != nil {
				return 0, err
			}
			results += int64(len(res))
		}
		return results, nil
	}
	if _, err := pass(); err != nil { // warm-up
		return footprintPassResult{}, err
	}
	ev.ResetCost()
	// Best of three passes: the per-dataset batches are short, so a single
	// pass is noisy enough to flip the latency ratio between runs.
	var res footprintPassResult
	for i := 0; i < 3; i++ {
		start := time.Now()
		results, err := pass()
		elapsed := time.Since(start)
		if err != nil {
			return footprintPassResult{}, err
		}
		if i == 0 || elapsed < res.elapsed {
			res.elapsed = elapsed
		}
		res.results = results
	}
	res.cost = ev.Cost().Total()
	return res, nil
}

// footprintMax builds the ~10× preset once and reports the index's resident
// size under both serving forms.
func footprintMax() (*FootprintMax, error) {
	ds, err := datagen.LoadFootprintDataset()
	if err != nil {
		return nil, err
	}
	idx := core.BuildAPEX0(ds.Graph)
	m := &FootprintMax{
		Dataset:    ds.Name,
		Scale:      datagen.FootprintScale,
		GraphNodes: ds.Graph.NumNodes(),
	}
	flat := idx.Footprint()
	m.Edges, m.FlatBytes = flat.Edges, flat.Bytes
	m.HeapFlat = heapInUse()
	idx.SetCompressExtents(true)
	idx.FreezeExtents()
	comp := idx.Footprint()
	m.CompressedBytes = comp.Bytes
	if comp.Edges > 0 {
		m.CompressedBPE = float64(comp.Bytes) / float64(comp.Edges)
	}
	m.HeapCompressed = heapInUse()
	runtime.KeepAlive(idx)
	return m, nil
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// RenderFootprint prints the sweep as a table.
func RenderFootprint(rep FootprintReport) string {
	var b []byte
	b = fmt.Appendf(b, "Extent footprint (scale=%g)\n", rep.Scale)
	b = fmt.Appendf(b, "%-16s %9s %8s %10s %10s %7s %7s %8s %7s\n",
		"dataset", "edges", "blocks", "flat", "packed", "B/edge", "ratio", "lat", "agreed")
	for _, r := range rep.Rows {
		b = fmt.Appendf(b, "%-16s %9d %8d %10d %10d %7.2f %6.2fx %7.2fx %7v\n",
			r.Dataset, r.Edges, r.Blocks, r.FlatBytes, r.CompressedBytes,
			r.CompressedBPE, r.Ratio, r.LatencyRatio, r.Agreed)
	}
	b = fmt.Appendf(b, "mean compressed B/edge: %.2f   geomean latency ratio: %.2fx\n",
		rep.MeanCompressedBPE, rep.GeomeanLatencyRatio)
	if rep.Max != nil {
		m := rep.Max
		b = fmt.Appendf(b, "max-in-RAM %s@%g: %d nodes, %d edges, flat=%d packed=%d (%.2f B/edge), heap %d -> %d\n",
			m.Dataset, m.Scale, m.GraphNodes, m.Edges, m.FlatBytes, m.CompressedBytes,
			m.CompressedBPE, m.HeapFlat, m.HeapCompressed)
	}
	return string(b)
}

// WriteFootprintJSON records the report (the CI benchmark job uploads it as
// BENCH_FOOTPRINT.json).
func WriteFootprintJSON(w io.Writer, rep FootprintReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
