package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestServeShape runs a scaled-down serving experiment and checks the
// acceptance shape: a bounded replayed workload is mostly absorbed by the
// cache (hit rate well past one half), the mid-run adapt publishes a new
// generation and invalidates, and no request errors.
func TestServeShape(t *testing.T) {
	env := NewEnv(DefaultConfig())
	rep, err := env.Serve("Flix01.xml", 2, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	if want := int64(2 * 6 * rep.Distinct); rep.Requests != want {
		t.Fatalf("requests = %d, want %d", rep.Requests, want)
	}
	if rep.HitRate < 0.5 {
		t.Fatalf("hit rate = %.2f, want >= 0.5 (hits=%d misses=%d)", rep.HitRate, rep.CacheHits, rep.CacheMisses)
	}
	if rep.Generation != 1 || rep.Invalidated == 0 {
		t.Fatalf("generation=%d invalidated=%d, want a mid-run publication with invalidations", rep.Generation, rep.Invalidated)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("latency percentiles out of order: p50=%v p99=%v", rep.P50, rep.P99)
	}

	out := RenderServe(rep)
	if !strings.Contains(out, "hit-rate") {
		t.Fatalf("render:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteServeJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back ServeReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.HitRate != rep.HitRate || back.Requests != rep.Requests {
		t.Fatalf("JSON round-trip mismatch: %+v vs %+v", back, rep)
	}
}
