package bench

import (
	"fmt"
	"strings"
	"time"
)

// RenderTable1 prints Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: characteristics of the data sets\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %12s\n", "Data Set", "nodes", "edges", "labels")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %10d %8d(%d)\n",
			r.Dataset, r.Stats.Nodes, r.Stats.Edges, r.Stats.Labels, r.Stats.IDREFLabels)
	}
	return b.String()
}

// RenderTable2 prints Table 2 in the paper's layout (one row pair per data
// set: nodes then edges).
func RenderTable2(rows []Table2Row, minSups []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: statistics of index structures\n")
	fmt.Fprintf(&b, "%-22s %-6s %9s %9s", "Data Set", "", "SDG", "APEX0")
	for _, ms := range minSups {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("%g", ms))
	}
	fmt.Fprintf(&b, " %9s\n", "1-index")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-6s %9d %9d", r.Dataset, "Nodes", r.SDG[0], r.APEX0[0])
		for _, ms := range minSups {
			fmt.Fprintf(&b, " %9d", r.APEX[ms][0])
		}
		fmt.Fprintf(&b, " %9d\n", r.OneIndex[0])
		fmt.Fprintf(&b, "%-22s %-6s %9d %9d", "", "Edges", r.SDG[1], r.APEX0[1])
		for _, ms := range minSups {
			fmt.Fprintf(&b, " %9d", r.APEX[ms][1])
		}
		fmt.Fprintf(&b, " %9d\n", r.OneIndex[1])
	}
	return b.String()
}

// RenderFig13 prints one family's QTYPE1 series.
func RenderFig13(family string, rows []Fig13Row, minSups []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 (%s): total QTYPE1 evaluation\n", family)
	fmt.Fprintf(&b, "%-22s %-12s %14s %14s %12s\n", "Data Set", "Index", "weighted cost", "elapsed", "results")
	for _, r := range rows {
		put(&b, r.Dataset, r.SDG)
		put(&b, "", r.APEX0)
		for _, ms := range minSups {
			put(&b, "", r.APEX[ms])
		}
	}
	return b.String()
}

// RenderFig14 prints the QTYPE2 comparison.
func RenderFig14(rows []Fig14Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: total QTYPE2 evaluation [log scale in the paper]\n")
	fmt.Fprintf(&b, "%-22s %-12s %14s %14s %12s\n", "Data Set", "Index", "weighted cost", "elapsed", "results")
	for _, r := range rows {
		put(&b, r.Dataset, r.SDG)
		put(&b, "", r.APEX0)
		put(&b, "", r.APEX)
	}
	return b.String()
}

// RenderFig15 prints the QTYPE3 comparison.
func RenderFig15(rows []Fig15Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: total QTYPE3 evaluation [log scale in the paper]\n")
	fmt.Fprintf(&b, "%-22s %-12s %14s %14s %12s\n", "Data Set", "Index", "weighted cost", "elapsed", "results")
	for _, r := range rows {
		put(&b, r.Dataset, r.Fabric)
		put(&b, "", r.SDG)
		put(&b, "", r.APEX)
	}
	return b.String()
}

func put(b *strings.Builder, dataset string, r RunResult) {
	fmt.Fprintf(b, "%-22s %-12s %14d %14v %12d\n",
		dataset, r.Index, r.Cost.WeightedTotal(), r.Elapsed.Round(time.Microsecond), r.Results)
}
