package bench

import (
	"fmt"
	"time"

	"apex/internal/core"
	"apex/internal/query"
	"apex/internal/xmlgraph"
)

// The ablations isolate the design choices DESIGN.md calls out: the hash
// tree's direct answering, the per-position refinement inside joins, the
// remainder (T^R) storage discipline, incremental update vs rebuild, the
// QTYPE2 rewriting procedure, and the fabric's partial-match strategy.

// AblationFastPath compares QTYPE1 with and without the hash-tree fast
// path on an adapted APEX.
func (e *Env) AblationFastPath(dataset string) (on, off RunResult, err error) {
	s, err := e.site(dataset)
	if err != nil {
		return on, off, err
	}
	idx := s.buildAPEX(e.cfg.FixedMinSup)
	evOn := query.NewAPEXEvaluator(idx, s.dt)
	if on, err = runBatch(evOn, s.q1); err != nil {
		return on, off, err
	}
	on.Index = "fast-path on"
	evOff := query.NewAPEXEvaluator(idx, s.dt)
	evOff.DisableFastPath = true
	if off, err = runBatch(evOff, s.q1); err != nil {
		return on, off, err
	}
	off.Index = "fast-path off"
	return on, off, nil
}

// AblationRefinement compares QTYPE1 joins with workload-refined versus
// label-only candidate sets (fast path disabled on both sides so the join
// inputs are what differs).
func (e *Env) AblationRefinement(dataset string) (refined, plain RunResult, err error) {
	s, err := e.site(dataset)
	if err != nil {
		return refined, plain, err
	}
	idx := s.buildAPEX(e.cfg.FixedMinSup)
	evR := query.NewAPEXEvaluator(idx, s.dt)
	evR.DisableFastPath = true
	if refined, err = runBatch(evR, s.q1); err != nil {
		return refined, plain, err
	}
	refined.Index = "refined joins"
	evP := query.NewAPEXEvaluator(idx, s.dt)
	evP.DisableFastPath = true
	evP.DisableRefinement = true
	if plain, err = runBatch(evP, s.q1); err != nil {
		return refined, plain, err
	}
	plain.Index = "label-only joins"
	return refined, plain, nil
}

// AblationQ2Rewriting compares the paper's DataGuide QTYPE2 procedure
// (path unfolding + per-path re-navigation) against the linear product.
func (e *Env) AblationQ2Rewriting(dataset string) (paper, product RunResult, err error) {
	s, err := e.site(dataset)
	if err != nil {
		return paper, product, err
	}
	evPaper := query.NewSummaryEvaluator("SDG", s.dataguide(), s.ds.Graph, s.dt)
	if paper, err = runBatch(evPaper, s.q2); err != nil {
		return paper, product, err
	}
	paper.Index = "rewriting (2002)"
	evProd := query.NewSummaryEvaluator("SDG", s.dataguide(), s.ds.Graph, s.dt)
	evProd.UseProductQ2 = true
	if product, err = runBatch(evProd, s.q2); err != nil {
		return paper, product, err
	}
	product.Index = "product (modern)"
	return paper, product, nil
}

// AblationFabricScan compares the fabric's whole-trie partial matching
// (the 2002 behavior) against probing the distinct-path layer.
func (e *Env) AblationFabricScan(dataset string) (full, layered RunResult, err error) {
	s, err := e.site(dataset)
	if err != nil {
		return full, layered, err
	}
	evFull := query.NewFabricEvaluator(s.fabric())
	if full, err = runBatch(evFull, s.q3); err != nil {
		return full, layered, err
	}
	full.Index = "full scan (2002)"
	evLayer := query.NewFabricEvaluator(s.fabric())
	evLayer.UsePathLayer = true
	if layered, err = runBatch(evLayer, s.q3); err != nil {
		return full, layered, err
	}
	layered.Index = "path layer"
	return full, layered, nil
}

// AblationUpdate compares adapting an existing index incrementally against
// rebuilding from scratch when the workload shifts.
func (e *Env) AblationUpdate(dataset string) (incremental, rebuild time.Duration, err error) {
	s, err := e.site(dataset)
	if err != nil {
		return 0, 0, err
	}
	// Shifted workload: the second half of the query population.
	shift := workloadPaths(s.q1[len(s.q1)/2:])

	idx := s.buildAPEX(e.cfg.FixedMinSup)
	start := time.Now()
	idx.ExtractFrequentPaths(shift, e.cfg.FixedMinSup)
	idx.Update()
	incremental = time.Since(start)

	start = time.Now()
	core.BuildAPEX(s.ds.Graph, shift, e.cfg.FixedMinSup)
	rebuild = time.Since(start)
	return incremental, rebuild, nil
}

// AblationExtentStorage quantifies the remainder discipline of
// Definition 9: actual stored extent volume (Σ|T^R(p)|) versus the naive
// Σ|T(p)| over all required paths, which duplicates every edge under every
// suffix.
func (e *Env) AblationExtentStorage(dataset string) (stored, naive int, err error) {
	s, err := e.site(dataset)
	if err != nil {
		return 0, 0, err
	}
	idx := s.buildAPEX(e.cfg.FixedMinSup)
	stored = idx.Stats().ExtentEdges
	for _, ps := range idx.RequiredPaths() {
		p := xmlgraph.ParseLabelPath(ps)
		// |T(p)| = the union of extents of every node covering suffix p.
		nodes, covered := idx.LookupAll(p)
		if !covered.Equal(p) {
			continue
		}
		set := core.NewEdgeSet()
		for _, x := range nodes {
			x.Extent.Each(func(pr xmlgraph.EdgePair) { set.Add(pr) })
		}
		naive += set.Len()
	}
	return stored, naive, nil
}

func workloadPaths(qs []query.Query) []xmlgraph.LabelPath {
	res := make([]xmlgraph.LabelPath, len(qs))
	for i, q := range qs {
		res[i] = q.Path
	}
	return res
}

// RenderAblation prints a two-sided comparison.
func RenderAblation(title string, a, b RunResult) string {
	return fmt.Sprintf("%s:\n  %-20s weighted=%d elapsed=%v\n  %-20s weighted=%d elapsed=%v\n",
		title, a.Index, a.Cost.WeightedTotal(), a.Elapsed.Round(time.Microsecond),
		b.Index, b.Cost.WeightedTotal(), b.Elapsed.Round(time.Microsecond))
}
