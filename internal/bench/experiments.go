package bench

import (
	"fmt"

	"apex/internal/query"
	"apex/internal/xmlgraph"
)

// Table1Row is one data set characteristics row (paper Table 1).
type Table1Row struct {
	Dataset string
	Stats   xmlgraph.Stats
}

// Table1 generates all nine data sets and reports their characteristics.
func (e *Env) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range datasetNames() {
		s, err := e.site(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Dataset: name, Stats: s.ds.Graph.Stats()})
	}
	return rows, nil
}

// Table2Row is one index-structure statistics row (paper Table 2): node and
// edge counts for the strong DataGuide, APEX⁰, and APEX across the minSup
// sweep.
type Table2Row struct {
	Dataset  string
	SDG      [2]int             // nodes, edges
	APEX0    [2]int             // nodes, edges
	APEX     map[float64][2]int // minSup -> nodes, edges
	OneIndex [2]int             // extra: 1-index size for context
}

// Table2 reproduces the index-structure statistics.
func (e *Env) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range datasetNames() {
		s, err := e.site(name)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Dataset: name, APEX: make(map[float64][2]int)}
		dg := s.dataguide()
		row.SDG = [2]int{dg.NumNodes(), dg.NumEdges()}
		oix := s.oneindex()
		row.OneIndex = [2]int{oix.NumNodes(), oix.NumEdges()}
		a0 := s.buildAPEX0()
		st := a0.Stats()
		row.APEX0 = [2]int{st.Nodes, st.Edges}
		for _, ms := range e.cfg.MinSups {
			a := s.buildAPEX(ms)
			st := a.Stats()
			row.APEX[ms] = [2]int{st.Nodes, st.Edges}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig13Row is one dataset's QTYPE1 cost series (paper Figure 13): the
// strong DataGuide, APEX⁰, and APEX across the minSup sweep.
type Fig13Row struct {
	Dataset string
	SDG     RunResult
	APEX0   RunResult
	APEX    map[float64]RunResult // keyed by minSup
}

// Fig13 measures total QTYPE1 evaluation over one data set family
// ("plays", "flixml", "gedml"); Figure 13's subfigures (a), (b), (c).
func (e *Env) Fig13(family string) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, name := range familyDatasets(family) {
		s, err := e.site(name)
		if err != nil {
			return nil, err
		}
		row := Fig13Row{Dataset: name, APEX: make(map[float64]RunResult)}
		sdg := query.NewSummaryEvaluator("SDG", s.dataguide(), s.ds.Graph, s.dt)
		if row.SDG, err = runBatch(sdg, s.q1); err != nil {
			return nil, err
		}
		a0 := query.NewAPEXEvaluator(s.buildAPEX0(), s.dt)
		if row.APEX0, err = runBatch(a0, s.q1); err != nil {
			return nil, err
		}
		row.APEX0.Index = "APEX0"
		for _, ms := range e.cfg.MinSups {
			ap := query.NewAPEXEvaluator(s.buildAPEX(ms), s.dt)
			r, err := runBatch(ap, s.q1)
			if err != nil {
				return nil, err
			}
			r.Index = fmt.Sprintf("APEX(%g)", ms)
			row.APEX[ms] = r
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig14Row is one dataset's QTYPE2 comparison (paper Figure 14, log scale):
// SDG vs APEX⁰ vs APEX at the fixed minSup.
type Fig14Row struct {
	Dataset string
	SDG     RunResult
	APEX0   RunResult
	APEX    RunResult
}

// Fig14Datasets are the files the paper shows (one per family, middle
// size); the others "show similar results".
func Fig14Datasets() []string { return []string{"shakes_11.xml", "Flix02.xml", "Ged02.xml"} }

// Fig14 measures total QTYPE2 evaluation.
func (e *Env) Fig14() ([]Fig14Row, error) {
	var rows []Fig14Row
	for _, name := range Fig14Datasets() {
		s, err := e.site(name)
		if err != nil {
			return nil, err
		}
		var row Fig14Row
		row.Dataset = name
		sdg := query.NewSummaryEvaluator("SDG", s.dataguide(), s.ds.Graph, s.dt)
		if row.SDG, err = runBatch(sdg, s.q2); err != nil {
			return nil, err
		}
		a0 := query.NewAPEXEvaluator(s.buildAPEX0(), s.dt)
		if row.APEX0, err = runBatch(a0, s.q2); err != nil {
			return nil, err
		}
		row.APEX0.Index = "APEX0"
		ap := query.NewAPEXEvaluator(s.buildAPEX(e.cfg.FixedMinSup), s.dt)
		if row.APEX, err = runBatch(ap, s.q2); err != nil {
			return nil, err
		}
		row.APEX.Index = fmt.Sprintf("APEX(%g)", e.cfg.FixedMinSup)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig15Row is one dataset's QTYPE3 comparison (paper Figure 15, log
// scale): Index Fabric vs SDG vs APEX at the fixed minSup.
type Fig15Row struct {
	Dataset string
	Fabric  RunResult
	SDG     RunResult
	APEX    RunResult
}

// Fig15 measures total QTYPE3 evaluation.
func (e *Env) Fig15() ([]Fig15Row, error) {
	var rows []Fig15Row
	for _, name := range Fig14Datasets() {
		s, err := e.site(name)
		if err != nil {
			return nil, err
		}
		var row Fig15Row
		row.Dataset = name
		fab := query.NewFabricEvaluator(s.fabric())
		if row.Fabric, err = runBatch(fab, s.q3); err != nil {
			return nil, err
		}
		sdg := query.NewSummaryEvaluator("SDG", s.dataguide(), s.ds.Graph, s.dt)
		if row.SDG, err = runBatch(sdg, s.q3); err != nil {
			return nil, err
		}
		ap := query.NewAPEXEvaluator(s.buildAPEX(e.cfg.FixedMinSup), s.dt)
		if row.APEX, err = runBatch(ap, s.q3); err != nil {
			return nil, err
		}
		row.APEX.Index = fmt.Sprintf("APEX(%g)", e.cfg.FixedMinSup)
		rows = append(rows, row)
	}
	return rows, nil
}

func datasetNames() []string {
	return []string{
		"four_tragedies.xml", "shakes_11.xml", "shakes_all.xml",
		"Flix01.xml", "Flix02.xml", "Flix03.xml",
		"Ged01.xml", "Ged02.xml", "Ged03.xml",
	}
}

func familyDatasets(family string) []string {
	switch family {
	case "plays":
		return []string{"four_tragedies.xml", "shakes_11.xml", "shakes_all.xml"}
	case "flixml":
		return []string{"Flix01.xml", "Flix02.xml", "Flix03.xml"}
	case "gedml":
		return []string{"Ged01.xml", "Ged02.xml", "Ged03.xml"}
	default:
		return nil
	}
}

// Families lists the three data set families in paper order.
func Families() []string { return []string{"plays", "flixml", "gedml"} }
