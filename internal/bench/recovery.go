package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"apex"
	"apex/internal/datagen"
)

// RecoveryReport measures the durable storage engine's reason for existing:
// how much faster a restart is when the process reopens the last checkpoint
// and replays the WAL tail instead of rebuilding the index from the source
// data. The headline number is the restart speedup (cold rebuild wall time
// over durable open wall time); the report also prices the checkpoint on
// disk in bytes per extent edge and proves the shortcut is exact by
// fingerprint comparison against a cold reference rebuild.
type RecoveryReport struct {
	Dataset     string `json:"dataset"`
	GraphEdges  int    `json:"graph_edges"`
	ExtentEdges int    `json:"extent_edges"`
	TailRecords int64  `json:"tail_records"`

	ColdRebuild time.Duration `json:"cold_rebuild_ns"`
	DurableOpen time.Duration `json:"durable_open_ns"`
	Speedup     float64       `json:"speedup"`

	CheckpointBytes int64   `json:"checkpoint_bytes"`
	SegmentBytes    int64   `json:"segment_bytes"`
	BytesPerEdge    float64 `json:"bytes_per_edge"`

	ReplayedRecords int64 `json:"replayed_records"`
	Identical       bool  `json:"identical"`
}

// Recovery runs the restart experiment on one dataset: build and persist a
// durable index, journal tailAdapts restructurings into the WAL without
// checkpointing (the daemon's state right after a crash), then race the two
// ways back to a serving index — apex.RecoverDir against a cold rebuild
// that re-applies the same writes. Both paths start from an already-loaded
// data graph, which is conservative: a real cold start would also re-parse
// the source document.
func (e *Env) Recovery(name string, tailAdapts int) (RecoveryReport, error) {
	s, err := e.site(name)
	if err != nil {
		return RecoveryReport{}, err
	}
	// The tail restructurings, as query batches drawn from the site's
	// QTYPE1 population (what POST /adapt journals in production).
	batches := make([][]string, tailAdapts)
	for i := range batches {
		for j := i * 8; j < (i+1)*8 && j < len(s.q1); j++ {
			batches[i] = append(batches[i], s.q1[j].String())
		}
		if len(batches[i]) == 0 {
			return RecoveryReport{}, fmt.Errorf("bench: recovery: dataset %s yielded too few queries", name)
		}
	}
	// Private graph loads: journaled writes may mutate them, and the cached
	// site graph is shared with the other experiments.
	load := func() (*apex.Index, error) {
		ds, err := datagen.LoadDataset(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		return apex.FromGraph(ds.Graph, &apex.Options{NoSync: true})
	}

	dir, err := os.MkdirTemp("", "apexbench-recovery-")
	if err != nil {
		return RecoveryReport{}, err
	}
	defer os.RemoveAll(dir)

	// The crashed process: persisted once, then journaled writes it never
	// got to checkpoint.
	ix, err := load()
	if err != nil {
		return RecoveryReport{}, err
	}
	if err := ix.Persist(dir); err != nil {
		return RecoveryReport{}, err
	}
	for i, qs := range batches {
		if err := ix.AdaptTo(qs, e.cfg.MinSups[0]); err != nil {
			return RecoveryReport{}, fmt.Errorf("bench: recovery: adapt %d: %w", i, err)
		}
	}
	wantFP := ix.Fingerprint()
	if err := ix.Close(); err != nil {
		return RecoveryReport{}, err
	}

	// Cold path: rebuild from the data graph and re-apply the writes.
	coldStart := time.Now()
	cold, err := load()
	if err != nil {
		return RecoveryReport{}, err
	}
	for _, qs := range batches {
		if err := cold.AdaptTo(qs, e.cfg.MinSups[0]); err != nil {
			return RecoveryReport{}, err
		}
	}
	coldElapsed := time.Since(coldStart)
	coldFP := cold.Fingerprint()

	// Durable path: open the directory, replay the tail. RecoverDir also
	// folds the replayed tail into a fresh checkpoint before returning, so
	// the measured time is the full restart cost, not just the read.
	openStart := time.Now()
	re, err := apex.RecoverDir(dir, "", nil)
	if err != nil {
		return RecoveryReport{}, fmt.Errorf("bench: recovery: open: %w", err)
	}
	openElapsed := time.Since(openStart)
	defer re.Close()

	st, ok := re.DurabilityStats()
	if !ok {
		return RecoveryReport{}, fmt.Errorf("bench: recovery: recovered index not durable")
	}
	ixStats := re.Stats()
	rep := RecoveryReport{
		Dataset:         name,
		GraphEdges:      ixStats.Edges,
		ExtentEdges:     ixStats.ExtentEdges,
		TailRecords:     int64(tailAdapts),
		ColdRebuild:     coldElapsed,
		DurableOpen:     openElapsed,
		CheckpointBytes: st.CheckpointBytes,
		SegmentBytes:    st.SegmentBytes,
		ReplayedRecords: st.ReplayedRecords,
		Identical:       re.Fingerprint() == wantFP && coldFP == wantFP,
	}
	if openElapsed > 0 {
		rep.Speedup = float64(coldElapsed) / float64(openElapsed)
	}
	if ixStats.ExtentEdges > 0 {
		rep.BytesPerEdge = float64(st.SegmentBytes) / float64(ixStats.ExtentEdges)
	}
	return rep, nil
}

// RenderRecovery formats the recovery report.
func RenderRecovery(rep RecoveryReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "crash recovery (%s): %d-record WAL tail over the last checkpoint\n",
		rep.Dataset, rep.TailRecords)
	fmt.Fprintf(&b, "  restart: durable-open=%v cold-rebuild=%v speedup=%.1fx identical=%v\n",
		rep.DurableOpen.Round(time.Millisecond), rep.ColdRebuild.Round(time.Millisecond),
		rep.Speedup, rep.Identical)
	fmt.Fprintf(&b, "  disk: checkpoint=%d B segments=%d B (%.2f B/extent-edge, %d extent edges)\n",
		rep.CheckpointBytes, rep.SegmentBytes, rep.BytesPerEdge, rep.ExtentEdges)
	fmt.Fprintf(&b, "  replayed %d journaled writes\n", rep.ReplayedRecords)
	return b.String()
}

// WriteRecoveryJSON writes the report as indented JSON (the
// BENCH_RECOVERY.json artifact the regression gate reads).
func WriteRecoveryJSON(w io.Writer, rep RecoveryReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
