package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"apex"
	"apex/internal/server"
	"apex/internal/shard"
)

// ShardRun measures the scatter-gather serving stack at one shard count.
// The cache rates count per-shard probes (one query over N shards moves the
// counters by N); ColdQPS is the single-client, all-miss pass — the number
// that exposes gather parallelism over 1/N-size extents — and SteadyQPS is
// the concurrent cached replay with a single-shard adapt fired mid-run.
type ShardRun struct {
	Shards      int     `json:"shards"`
	ReplicaUnit int     `json:"replica_units"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	Invalidated int64   `json:"invalidated"`

	ColdQPS   float64       `json:"cold_qps"`
	SteadyQPS float64       `json:"steady_qps"`
	P50       time.Duration `json:"p50_ns"`
	P99       time.Duration `json:"p99_ns"`
}

// ShardReport is the BENCH_SHARD.json artifact: the same serving workload
// replayed against 1, 2, 4, and 8 document-partitioned shards. The headline
// is the generation-vector cache hit rate at 4 shards — a mid-run adapt
// routed to one shard must invalidate only that shard's cached partials, so
// the rate stays close to the single-index serve experiment's instead of
// collapsing by a factor of N.
type ShardReport struct {
	Dataset  string     `json:"dataset"`
	Clients  int        `json:"clients"`
	Rounds   int        `json:"rounds"`
	Distinct int        `json:"distinct_queries"`
	Runs     []ShardRun `json:"runs"`

	HitRate4     float64 `json:"hit_rate_4shards"`
	ColdSpeedup4 float64 `json:"cold_speedup_4shards"` // ColdQPS(4) / ColdQPS(1)
}

// Shard runs the sharded serving experiment on one dataset for each shard
// count: partition, index each shard, serve through the router, replay the
// workload (a cold single-client pass first, then the concurrent cached
// replay with POST /adapt routed to one shard mid-run).
func (e *Env) Shard(name string, shardCounts []int, clients, rounds, distinct int) (ShardReport, error) {
	s, err := e.site(name)
	if err != nil {
		return ShardReport{}, err
	}
	queries := make([]string, 0, distinct)
	for _, q := range s.q1 {
		if len(queries) == cap(queries) {
			break
		}
		queries = append(queries, q.String())
	}
	if len(queries) == 0 {
		return ShardReport{}, fmt.Errorf("bench: shard: dataset %s yielded no queries", name)
	}

	rep := ShardReport{Dataset: name, Clients: clients, Rounds: rounds, Distinct: len(queries)}
	for _, n := range shardCounts {
		run, err := e.shardRun(s, n, clients, rounds, queries)
		if err != nil {
			return ShardReport{}, fmt.Errorf("bench: shard: %d shards: %w", n, err)
		}
		rep.Runs = append(rep.Runs, run)
	}
	var cold1 float64
	for _, r := range rep.Runs {
		switch r.Shards {
		case 1:
			cold1 = r.ColdQPS
		case 4:
			rep.HitRate4 = r.HitRate
			if cold1 > 0 {
				rep.ColdSpeedup4 = r.ColdQPS / cold1
			}
		}
	}
	return rep, nil
}

// shardRun measures one shard count. Each shard evaluates single-threaded
// (Parallelism 1) so the cold pass isolates gather parallelism — N shards
// scanning 1/N-size extents concurrently — instead of intra-shard fan-out.
func (e *Env) shardRun(s *siteData, n, clients, rounds int, queries []string) (ShardRun, error) {
	local, plan, err := shard.BuildLocal(s.ds.Graph, n, &apex.Options{Parallelism: 1})
	if err != nil {
		return ShardRun{}, err
	}
	rt := shard.NewRouter(shard.Backends(local), 0)
	srv := server.NewRouterServer(rt, server.Config{MaxInflight: 4 * clients})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Cold pass: one client, one round, nothing cached yet. Every query pays
	// a full scatter-gather, so wall clock here is evaluation throughput.
	coldStart := time.Now()
	coldSamples, coldErrs, _ := replay(ts.Client, []string{ts.URL}, 1, 1, queries, nil)
	coldWall := time.Since(coldStart)
	if coldErrs > 0 {
		return ShardRun{}, fmt.Errorf("cold pass: %d errors", coldErrs)
	}

	// Steady replay: the serve experiment's concurrent workload, with the
	// mid-run adapt routed to a single shard so only that shard's cache
	// entries are invalidated.
	adaptShard := 2
	if adaptShard > n-1 {
		adaptShard = n - 1
	}
	steadyStart := time.Now()
	samples, errs, invalidated := replay(ts.Client, []string{ts.URL}, clients, rounds, queries,
		func(client *http.Client) (int64, error) {
			return postShardAdapt(client, ts.URL, queries, adaptShard)
		})
	steadyWall := time.Since(steadyStart)

	st := srv.CacheStats()
	run := ShardRun{
		Shards:      n,
		ReplicaUnit: plan.Replicated(),
		Requests:    int64(len(samples)+len(coldSamples)) + errs,
		Errors:      errs,
		CacheHits:   st.Hits,
		CacheMisses: st.Misses,
		Invalidated: invalidated,
	}
	if total := st.Hits + st.Misses; total > 0 {
		run.HitRate = float64(st.Hits) / float64(total)
	}
	if sec := coldWall.Seconds(); sec > 0 {
		run.ColdQPS = float64(len(coldSamples)) / sec
	}
	if sec := steadyWall.Seconds(); sec > 0 {
		run.SteadyQPS = float64(len(samples)) / sec
	}
	var all []time.Duration
	for _, sm := range samples {
		all = append(all, sm.wall)
	}
	run.P50 = percentileDuration(all, 0.50)
	run.P99 = percentileDuration(all, 0.99)
	return run, nil
}

// postShardAdapt issues the mid-run restructuring of one shard and returns
// how many cached partials the router invalidated (only that shard's).
func postShardAdapt(client *http.Client, base string, queries []string, shardIdx int) (int64, error) {
	body, _ := json.Marshal(map[string]any{"queries": queries, "min_sup": 0.01, "shard": shardIdx})
	resp, err := client.Post(base+"/adapt", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var ar struct {
		Invalidated int64 `json:"invalidated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("bench: shard: adapt status %d", resp.StatusCode)
	}
	return ar.Invalidated, nil
}

// RenderShard formats the sharded serving report.
func RenderShard(rep ShardReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "sharded serving (%s): %d clients x %d rounds x %d distinct queries, single-shard adapt mid-run\n",
		rep.Dataset, rep.Clients, rep.Rounds, rep.Distinct)
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "  shards=%d replicas=%d requests=%d errors=%d hit-rate=%.1f%% invalidated=%d cold=%.0f q/s steady=%.0f q/s p50=%v p99=%v\n",
			r.Shards, r.ReplicaUnit, r.Requests, r.Errors, 100*r.HitRate, r.Invalidated,
			r.ColdQPS, r.SteadyQPS, r.P50, r.P99)
	}
	fmt.Fprintf(&b, "  headline: hit-rate@4=%.1f%% cold-speedup@4=%.2fx\n",
		100*rep.HitRate4, rep.ColdSpeedup4)
	return b.String()
}

// WriteShardJSON writes the report as indented JSON (the BENCH_SHARD.json
// artifact the regression gate reads).
func WriteShardJSON(w io.Writer, rep ShardReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
