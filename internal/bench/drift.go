package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"apex"
	"apex/internal/controller"
	"apex/internal/datagen"
	"apex/internal/query"
	"apex/internal/server"
	"apex/internal/workload"
)

// The drift experiment is the proof behind self-driving adaptation: a live
// workload whose hot paths shift mid-run, replayed against apexd twice —
// once with the background controller on, once off. Before the shift both
// runs serve family A from an index adapted to family A. At the shift the
// clients move to a disjoint family B: the controller-on daemon detects the
// drift in its workload log, tunes MinSup against the memory budget, and
// republishes, pulling family B onto the fast path; the controller-off
// daemon keeps serving B through structural joins forever.
//
// Two instruments capture the divergence. Client-observed p99 over the
// settled tail of the post-shift window (the region after the controller
// had time to act) is the operational headline. The logical cost per
// evaluated query — machine-portable, deterministic — is the gate's anchor:
// fast-path lookups cost O(path), joins scan extents, so the off-run's
// settled cost must exceed the on-run's by construction.

// DriftPhaseStats aggregates one replay window.
type DriftPhaseStats struct {
	Seconds     float64       `json:"seconds"`
	Requests    int64         `json:"requests"`
	Errors      int64         `json:"errors"`
	CacheHits   int64         `json:"cache_hits"`
	CacheMisses int64         `json:"cache_misses"`
	HitRate     float64       `json:"hit_rate"`
	CostPerEval float64       `json:"cost_per_eval"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
}

// DriftRun is one full soak (pre-shift, post-shift, settled tail) with the
// controller on or off.
type DriftRun struct {
	Controller bool `json:"controller"`

	Pre     DriftPhaseStats `json:"pre"`
	Post    DriftPhaseStats `json:"post"`    // full post-shift window
	Settled DriftPhaseStats `json:"settled"` // tail of the post-shift window

	// SettledP99Ratio is Settled.P99 / Pre.P99 — the "p99 stays flat"
	// number. SettledCostRatio is the same ratio over logical cost per
	// evaluated query.
	SettledP99Ratio  float64 `json:"settled_p99_ratio"`
	SettledCostRatio float64 `json:"settled_cost_ratio"`

	// Adapts counts controller-triggered republications; BRequiredPaths
	// how many of family B's paths the final index maintains (the
	// deterministic proof the controller actually retargeted the index).
	Adapts          int               `json:"adapts"`
	BRequiredPaths  int               `json:"b_required_paths"`
	FinalGeneration uint64            `json:"final_generation"`
	ControllerState *controller.State `json:"controller_state,omitempty"`
}

// DriftReport is the BENCH_DRIFT.json artifact.
type DriftReport struct {
	Dataset      string  `json:"dataset"`
	Scale        float64 `json:"scale"`
	Clients      int     `json:"clients"`
	PhaseSeconds float64 `json:"phase_seconds"`
	FamilySize   int     `json:"family_size"`   // path groups per family
	VariantsA    int     `json:"variants_a"`    // distinct QTYPE3 queries, family A
	VariantsB    int     `json:"variants_b"`    // distinct QTYPE3 queries, family B
	ThrashBound  int     `json:"thrash_bound"`  // max tolerated adapts
	MemoryBudget int64   `json:"memory_budget"` // bytes handed to the tuner

	On  DriftRun `json:"on"`
	Off DriftRun `json:"off"`

	// OffOnCostRatio compares how the two runs degraded: the off-run's
	// settled cost ratio over the on-run's. > 1 means the controller
	// measurably protected the workload.
	OffOnCostRatio float64 `json:"off_on_cost_ratio"`
}

// driftThrashBound is the most controller adapts one shift may trigger
// before the run counts as thrashing.
const driftThrashBound = 3

// driftFamily is one hot-path family: a few path groups, each with many
// distinct value variants.
type driftFamily struct {
	name  string
	paths []string // dotted label paths (required-path membership checks)
	hot   []string // QTYPE1 query strings, one per group (cacheable)
	q3    []string // QTYPE3 query strings, groups interleaved (evaluation stream)
}

// driftFamilies carves the generator's QTYPE3 population into two disjoint
// hot-path families of famSize path groups each, preferring groups with the
// most distinct value variants (so the evaluation stream cycles without
// repeating). Groups alternate between the families to balance them.
func driftFamilies(qs []query.Query, famSize, minVariants int) (a, b driftFamily, err error) {
	byPath := make(map[string][]string) // dotted path -> distinct query strings
	seen := make(map[string]bool)
	for _, q := range qs {
		if len(q.Path) < 2 {
			continue
		}
		s := q.String()
		if seen[s] {
			continue
		}
		seen[s] = true
		key := q.Path.String()
		byPath[key] = append(byPath[key], s)
	}
	keys := make([]string, 0, len(byPath))
	for k, v := range byPath {
		if len(v) >= minVariants {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(byPath[keys[i]]) != len(byPath[keys[j]]) {
			return len(byPath[keys[i]]) > len(byPath[keys[j]])
		}
		return keys[i] < keys[j]
	})
	if len(keys) < 2*famSize {
		return a, b, fmt.Errorf("bench: drift: only %d path groups with >=%d variants, need %d",
			len(keys), minVariants, 2*famSize)
	}
	a, b = driftFamily{name: "A"}, driftFamily{name: "B"}
	groups := map[*driftFamily][][]string{}
	for i := 0; i < 2*famSize; i++ {
		fam := &a
		if i%2 == 1 {
			fam = &b
		}
		fam.paths = append(fam.paths, keys[i])
		fam.hot = append(fam.hot, query.Query{Type: query.QTYPE1, Path: strings.Split(keys[i], ".")}.String())
		groups[fam] = append(groups[fam], byPath[keys[i]])
	}
	interleave := func(lists [][]string) []string {
		var out []string
		for i := 0; ; i++ {
			any := false
			for _, l := range lists {
				if i < len(l) {
					out = append(out, l[i])
					any = true
				}
			}
			if !any {
				return out
			}
		}
	}
	a.q3, b.q3 = interleave(groups[&a]), interleave(groups[&b])
	return a, b, nil
}

// driftHarness is one daemon under the drift workload.
type driftHarness struct {
	ix      *apex.Index
	srv     *server.Server
	ts      *httptest.Server
	clients int
	pace    time.Duration
}

// runPhase replays fam against the harness for dur: each client alternates
// one hot QTYPE1 query (absorbed by the cache) with one QTYPE3 variant
// (strided round-robin over the family pool, wrapping freely — the pool
// outsizes the result cache, so the cycle always evaluates). Returns the
// window's client-side stats.
func (h *driftHarness) runPhase(fam driftFamily, dur time.Duration) DriftPhaseStats {
	cost0 := h.ix.QueryCostTotal()
	cache0 := h.srv.Cache().Stats()
	start := time.Now()
	deadline := start.Add(dur)

	var mu sync.Mutex
	var all []time.Duration
	var errs int64
	var wg sync.WaitGroup
	for c := 0; c < h.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := h.ts.Client()
			local := make([]time.Duration, 0, 4096)
			var localErrs int64
			q3 := c // stride h.clients over the variant pool
			for n := 0; time.Now().Before(deadline); n++ {
				var q string
				if n%2 == 0 {
					q = fam.hot[(n/2)%len(fam.hot)]
				} else {
					q = fam.q3[q3%len(fam.q3)]
					q3 += h.clients
				}
				body, _ := json.Marshal(map[string]string{"query": q})
				t0 := time.Now()
				resp, err := client.Post(h.ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					localErrs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					localErrs++
					continue
				}
				local = append(local, time.Since(t0))
				if h.pace > 0 {
					time.Sleep(h.pace)
				}
			}
			mu.Lock()
			all = append(all, local...)
			errs += localErrs
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	cache1 := h.srv.Cache().Stats()
	st := DriftPhaseStats{
		Seconds:     time.Since(start).Seconds(),
		Requests:    int64(len(all)) + errs,
		Errors:      errs,
		CacheHits:   cache1.Hits - cache0.Hits,
		CacheMisses: cache1.Misses - cache0.Misses,
		P50:         percentileDuration(all, 0.50),
		P99:         percentileDuration(all, 0.99),
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.HitRate = float64(st.CacheHits) / float64(total)
	}
	if st.CacheMisses > 0 {
		st.CostPerEval = float64(h.ix.QueryCostTotal()-cost0) / float64(st.CacheMisses)
	}
	return st
}

// driftRun soaks one daemon: pre-shift on family A, shift to family B, and
// a settled tail. The post-shift window is split so the settled stats start
// only after the controller had time to detect and adapt (60% in), keeping
// the detection-and-rebuild transient out of the "stays flat" claim — the
// transient itself is visible in Post.
func driftRun(ds *datagen.Dataset, famA, famB driftFamily, clients int, phase time.Duration, withController bool, budget int64) (DriftRun, error) {
	// A small workload log keeps the mining window tight: after the shift
	// it turns over to pure family-B traffic quickly, so the first adapt
	// already converges on the new profile instead of a mixed tail that
	// would trigger a second, later adapt inside the settled window.
	ix, err := apex.FromGraph(ds.Graph, &apex.Options{MaxWorkloadLog: 512})
	if err != nil {
		return DriftRun{}, err
	}
	// Both runs start adapted to family A: pre-shift is the healthy state.
	if err := ix.AdaptTo(famA.hot, 0.01); err != nil {
		return DriftRun{}, err
	}
	// The cache must absorb the hot QTYPE1 set (requested every other
	// round, so LRU keeps it resident) but not the QTYPE3 stream — each
	// family's variant pool outsizes the capacity and cycles, so every
	// variant is evicted before its next visit and evaluation cost stays
	// on the wire all run long.
	srv := server.New(ix, server.Config{CacheSize: 16, MaxInflight: 8 * clients})

	run := DriftRun{Controller: withController}
	var ctl *controller.Controller
	if withController {
		interval := phase / 24
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		if interval > 10*time.Second {
			interval = 10 * time.Second
		}
		ctl = controller.New(controller.NewIndexTarget("index", ix), controller.Config{
			Interval:       interval,
			DriftThreshold: 0.2,
			DriftTicks:     2,
			CooldownTicks:  4,
			MinWindow:      64,
			MemoryBudget:   budget,
			MinSupFloor:    0.01,
			MinSupCeil:     0.2,
		})
		srv.SetController(ctl)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go ctl.Run(ctx)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h := &driftHarness{ix: ix, srv: srv, ts: ts, clients: clients, pace: 200 * time.Microsecond}

	run.Pre = h.runPhase(famA, phase)
	adaptWindow := phase * 6 / 10
	transient := h.runPhase(famB, adaptWindow)
	run.Settled = h.runPhase(famB, phase-adaptWindow)
	run.Post = mergePhases(transient, run.Settled)

	if run.Pre.P99 > 0 {
		run.SettledP99Ratio = float64(run.Settled.P99) / float64(run.Pre.P99)
	}
	if run.Pre.CostPerEval > 0 {
		run.SettledCostRatio = run.Settled.CostPerEval / run.Pre.CostPerEval
	}
	required := make(map[string]bool)
	for _, p := range ix.Stats().RequiredPaths {
		required[p] = true
	}
	for _, p := range famB.paths {
		if required[p] {
			run.BRequiredPaths++
		}
	}
	run.FinalGeneration = ix.Generation()
	if ctl != nil {
		st := ctl.State()
		run.Adapts = int(st.Triggered)
		run.ControllerState = &st
	}
	return run, nil
}

// mergePhases folds two consecutive windows into one (percentiles are
// request-weighted approximations good enough for the transient view).
func mergePhases(a, b DriftPhaseStats) DriftPhaseStats {
	out := DriftPhaseStats{
		Seconds:     a.Seconds + b.Seconds,
		Requests:    a.Requests + b.Requests,
		Errors:      a.Errors + b.Errors,
		CacheHits:   a.CacheHits + b.CacheHits,
		CacheMisses: a.CacheMisses + b.CacheMisses,
	}
	if total := out.CacheHits + out.CacheMisses; total > 0 {
		out.HitRate = float64(out.CacheHits) / float64(total)
	}
	if out.CacheMisses > 0 {
		out.CostPerEval = (a.CostPerEval*float64(a.CacheMisses) + b.CostPerEval*float64(b.CacheMisses)) /
			float64(out.CacheMisses)
	}
	if a.P50 > b.P50 {
		out.P50 = a.P50
	} else {
		out.P50 = b.P50
	}
	if a.P99 > b.P99 {
		out.P99 = a.P99
	} else {
		out.P99 = b.P99
	}
	return out
}

// Drift runs the workload-shift soak on one dataset: controller-on and
// controller-off runs over identical family workloads and phase lengths.
// phase is the pre-shift window; the post-shift window matches it.
func (e *Env) Drift(name string, clients int, phase time.Duration) (DriftReport, error) {
	ds, err := datagen.LoadDataset(name, e.cfg.Scale)
	if err != nil {
		return DriftReport{}, err
	}
	gen := workload.New(ds.Graph, e.cfg.Seed+7)
	famA, famB, err := driftFamilies(gen.QType3(6000), 4, 6)
	if err != nil {
		return DriftReport{}, err
	}

	// Budget: generous enough to admit both families' paths, finite so the
	// tuner's projection actually runs against it.
	probe, err := apex.FromGraph(ds.Graph, &apex.Options{})
	if err != nil {
		return DriftReport{}, err
	}
	budget := int64(probe.Stats().ExtentBytes) * 8

	rep := DriftReport{
		Dataset:      name,
		Scale:        e.cfg.Scale,
		Clients:      clients,
		PhaseSeconds: phase.Seconds(),
		FamilySize:   len(famA.paths),
		VariantsA:    len(famA.q3),
		VariantsB:    len(famB.q3),
		ThrashBound:  driftThrashBound,
		MemoryBudget: budget,
	}
	if rep.On, err = driftRun(ds, famA, famB, clients, phase, true, budget); err != nil {
		return rep, err
	}
	if rep.Off, err = driftRun(ds, famA, famB, clients, phase, false, budget); err != nil {
		return rep, err
	}
	if rep.On.SettledCostRatio > 0 {
		rep.OffOnCostRatio = rep.Off.SettledCostRatio / rep.On.SettledCostRatio
	}
	return rep, nil
}

// RenderDrift formats the drift report.
func RenderDrift(rep DriftReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "workload-shift soak (%s, scale %g): %d clients, %gs per phase, %d+%d hot paths, %d/%d variants\n",
		rep.Dataset, rep.Scale, rep.Clients, rep.PhaseSeconds, rep.FamilySize, rep.FamilySize, rep.VariantsA, rep.VariantsB)
	row := func(r DriftRun) {
		mode := "off"
		if r.Controller {
			mode = "on "
		}
		fmt.Fprintf(&b, "  controller %s: pre p99=%v cost/eval=%.0f | settled p99=%v (x%.2f) cost/eval=%.0f (x%.2f) | adapts=%d B-paths=%d gen=%d\n",
			mode, r.Pre.P99, r.Pre.CostPerEval, r.Settled.P99, r.SettledP99Ratio,
			r.Settled.CostPerEval, r.SettledCostRatio, r.Adapts, r.BRequiredPaths, r.FinalGeneration)
	}
	row(rep.On)
	row(rep.Off)
	fmt.Fprintf(&b, "  off/on settled cost degradation: x%.2f\n", rep.OffOnCostRatio)
	return b.String()
}

// WriteDriftJSON writes the report as indented JSON (the BENCH_DRIFT.json
// artifact the regression gate reads).
func WriteDriftJSON(w io.Writer, rep DriftReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
