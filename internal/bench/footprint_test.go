package bench

import "testing"

// TestFootprintShape pins the footprint experiment's claims at test scale:
// both serving forms agree on every dataset, compression shrinks every row,
// and the mean compressed footprint clears the 12 B/edge acceptance bar
// (flat is 20). The 10× max-dataset measurement is skipped to keep the
// package's tests fast; the CI bench job runs it.
func TestFootprintShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	rep, err := env.Footprint([]string{"shakes_11.xml", "Flix02.xml", "Ged02.xml"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if !r.Agreed {
			t.Fatalf("%s: forms disagreed", r.Dataset)
		}
		if r.CompressedBytes >= r.FlatBytes {
			t.Fatalf("%s: compression did not shrink: %d >= %d", r.Dataset, r.CompressedBytes, r.FlatBytes)
		}
		if r.Blocks == 0 {
			t.Fatalf("%s: no blocks recorded", r.Dataset)
		}
	}
	// At this reduced scale more extents sit under the pack threshold and
	// stay flat, so the bound is looser than the 12 B/edge acceptance bar
	// benchcheck enforces on the full-scale BENCH_FOOTPRINT.json.
	if rep.MeanCompressedBPE <= 0 || rep.MeanCompressedBPE >= 16 {
		t.Fatalf("mean compressed footprint %.2f B/edge outside (0, 16)", rep.MeanCompressedBPE)
	}
	t.Logf("mean compressed B/edge = %.2f, geomean latency ratio = %.2fx",
		rep.MeanCompressedBPE, rep.GeomeanLatencyRatio)
}
