package bench

import "testing"

// The shape tests pin the qualitative results EXPERIMENTS.md reports — the
// reproduction's actual claims — so a regression in any index or evaluator
// that flips a paper conclusion fails CI, not just a benchmark eyeball.
// They run at a reduced scale chosen to keep the whole package's tests
// under half a minute while leaving the orderings stable.

func shapeConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.03
	c.NumQ1, c.NumQ2, c.NumQ3 = 300, 40, 80
	return c
}

func TestShapeFig13IrregularityGradient(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	ratio := func(family string) float64 {
		rows, err := env.Fig13(family)
		if err != nil {
			t.Fatal(err)
		}
		last := rows[len(rows)-1]
		return float64(last.SDG.Cost.WeightedTotal()) /
			float64(last.APEX[env.Config().FixedMinSup].Cost.WeightedTotal())
	}
	plays, flix, ged := ratio("plays"), ratio("flixml"), ratio("gedml")
	// Headline claim: the APEX advantage grows with irregularity.
	if !(plays < flix && flix < ged) {
		t.Fatalf("irregularity gradient violated: plays=%.1f flix=%.1f ged=%.1f", plays, flix, ged)
	}
	if ged < 5 {
		t.Fatalf("APEX should beat SDG by a wide margin on GedML, got %.1fx", ged)
	}
	if plays < 0.5 {
		t.Fatalf("APEX should be at least near parity on plays, got %.2fx", plays)
	}
}

func TestShapeFig13APEX0IsUpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	rows, err := env.Fig13("flixml")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		a0 := r.APEX0.Cost.WeightedTotal()
		for ms, rr := range r.APEX {
			if rr.Cost.WeightedTotal() > a0 {
				t.Fatalf("%s: APEX(%g)=%d above APEX0=%d", r.Dataset, ms, rr.Cost.WeightedTotal(), a0)
			}
		}
	}
}

func TestShapeTable2SDGExplodesOnGedML(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	rows, err := env.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Dataset != "Ged03.xml" {
			continue
		}
		apex := r.APEX[env.Config().FixedMinSup][0]
		if r.SDG[0] < 10*apex {
			t.Fatalf("SDG (%d nodes) should dwarf APEX (%d nodes) on Ged03", r.SDG[0], apex)
		}
	}
}

func TestShapeFig14APEXFamilyWinsOnIrregular(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	rows, err := env.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Dataset == "shakes_11.xml" {
			continue // documented divergence: parity on the tiny play summary
		}
		best := r.APEX.Cost.WeightedTotal()
		if a0 := r.APEX0.Cost.WeightedTotal(); a0 < best {
			best = a0
		}
		if r.SDG.Cost.WeightedTotal() < best {
			t.Fatalf("%s: SDG (%d) beat the APEX family (%d) on QTYPE2",
				r.Dataset, r.SDG.Cost.WeightedTotal(), best)
		}
	}
}

func TestShapeFig15Crossover(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	rows, err := env.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Dataset {
		case "shakes_11.xml":
			// Near-regular data: the fabric wins.
			if r.Fabric.Cost.WeightedTotal() > r.APEX.Cost.WeightedTotal() {
				t.Fatalf("fabric (%d) should beat APEX (%d) on plays",
					r.Fabric.Cost.WeightedTotal(), r.APEX.Cost.WeightedTotal())
			}
		case "Flix02.xml", "Ged02.xml":
			// Irregular data: APEX wins against the fabric.
			if r.APEX.Cost.WeightedTotal() > r.Fabric.Cost.WeightedTotal() {
				t.Fatalf("%s: APEX (%d) should beat fabric (%d)",
					r.Dataset, r.APEX.Cost.WeightedTotal(), r.Fabric.Cost.WeightedTotal())
			}
		}
	}
}

func TestShapeASRCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	cmp, err := env.CompareASR("Ged02.xml")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ASRFallbacks == 0 {
		t.Fatal("expected uncovered queries to fall back")
	}
	if cmp.ASRCost < 2*cmp.APEXCost {
		t.Fatalf("predefined paths (%d) should cost well above APEX (%d)", cmp.ASRCost, cmp.APEXCost)
	}
}
