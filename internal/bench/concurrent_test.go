package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestConcurrencySweepShape(t *testing.T) {
	env := NewEnv(tinyConfig())
	rep, err := env.Concurrency("Flix02.xml", []int{1, 2}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // 2 scenarios × 2 worker counts
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	scenarios := map[string]bool{}
	for _, r := range rep.Rows {
		scenarios[r.Scenario] = true
		if r.Queries != 120 {
			t.Fatalf("%s/%d evaluated %d queries, want 120", r.Scenario, r.Workers, r.Queries)
		}
		if r.QPS <= 0 || r.Elapsed <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Workers == 1 && r.Speedup != 1.0 {
			t.Fatalf("serial baseline speedup = %v, want 1.0", r.Speedup)
		}
	}
	if !scenarios["read-only"] || !scenarios["read+adapt"] {
		t.Fatalf("missing scenario in %v", scenarios)
	}
	if rep.GoMaxProcs <= 0 {
		t.Fatalf("report did not record host parallelism: %+v", rep)
	}

	out := RenderConcurrency(rep)
	if !strings.Contains(out, "read-only") || !strings.Contains(out, "speedup") {
		t.Fatalf("render missing columns:\n%s", out)
	}

	var buf bytes.Buffer
	if err := WriteConcurrencyJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back ConcurrencyReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Dataset != rep.Dataset {
		t.Fatalf("JSON round trip mangled the report")
	}
}
