package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV emitters for downstream plotting: one file per figure, one row per
// (dataset, index) series point, mirroring the text renderers.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func runRow(dataset string, r RunResult) []string {
	return []string{
		dataset,
		r.Index,
		strconv.FormatInt(r.Cost.WeightedTotal(), 10),
		strconv.FormatInt(r.Cost.Total(), 10),
		strconv.FormatInt(int64(r.Elapsed/time.Microsecond), 10),
		strconv.FormatInt(r.Results, 10),
	}
}

var runHeader = []string{"dataset", "index", "weighted_cost", "raw_cost", "elapsed_us", "results"}

// WriteFig13CSV emits one family's QTYPE1 series.
func WriteFig13CSV(w io.Writer, rows []Fig13Row, minSups []float64) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, runRow(r.Dataset, r.SDG), runRow(r.Dataset, r.APEX0))
		for _, ms := range minSups {
			out = append(out, runRow(r.Dataset, r.APEX[ms]))
		}
	}
	return writeCSV(w, runHeader, out)
}

// WriteFig14CSV emits the QTYPE2 comparison.
func WriteFig14CSV(w io.Writer, rows []Fig14Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, runRow(r.Dataset, r.SDG), runRow(r.Dataset, r.APEX0), runRow(r.Dataset, r.APEX))
	}
	return writeCSV(w, runHeader, out)
}

// WriteFig15CSV emits the QTYPE3 comparison.
func WriteFig15CSV(w io.Writer, rows []Fig15Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, runRow(r.Dataset, r.Fabric), runRow(r.Dataset, r.SDG), runRow(r.Dataset, r.APEX))
	}
	return writeCSV(w, runHeader, out)
}

// WriteTable2CSV emits the index size sweep.
func WriteTable2CSV(w io.Writer, rows []Table2Row, minSups []float64) error {
	header := []string{"dataset", "index", "nodes", "edges"}
	var out [][]string
	put := func(ds, idx string, ne [2]int) {
		out = append(out, []string{ds, idx, strconv.Itoa(ne[0]), strconv.Itoa(ne[1])})
	}
	for _, r := range rows {
		put(r.Dataset, "SDG", r.SDG)
		put(r.Dataset, "APEX0", r.APEX0)
		for _, ms := range minSups {
			put(r.Dataset, fmt.Sprintf("APEX(%g)", ms), r.APEX[ms])
		}
		put(r.Dataset, "1-index", r.OneIndex)
	}
	return writeCSV(w, header, out)
}
