package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The benchmark regression gate. Each benchmark artifact (the BENCH_*.json
// files apexbench writes) has one headline metric chosen for cross-machine
// stability: ratios and fractions rather than absolute wall times, so a
// baseline recorded on one box is meaningful on another. The gate compares a
// current artifact against the checked-in baseline and fails on a
// worse-than-tolerance move in the bad direction; moves in the good
// direction only raise a note (refresh the baseline to lock them in).

// headlineSpec describes how to extract one artifact's headline metric.
type headlineSpec struct {
	// Metric names the extracted value in reports.
	Metric string
	// HigherIsBetter orients the regression test.
	HigherIsBetter bool
	// Extract pulls the metric out of the decoded artifact.
	Extract func(data []byte) (float64, error)
}

// headlines maps an artifact's base filename to its headline metric.
var headlines = map[string]headlineSpec{
	"BENCH_CONCURRENCY.json": {
		Metric:         "max read-only speedup",
		HigherIsBetter: true,
		Extract: func(data []byte) (float64, error) {
			var rep ConcurrencyReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			best := 0.0
			for _, r := range rep.Rows {
				if r.Scenario == "read-only" && r.Speedup > best {
					best = r.Speedup
				}
			}
			if best == 0 {
				return 0, fmt.Errorf("no read-only rows")
			}
			return best, nil
		},
	},
	"BENCH_ADAPT.json": {
		Metric:         "refreeze fraction",
		HigherIsBetter: false,
		Extract: func(data []byte) (float64, error) {
			var rep AdaptStallReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			if rep.ConsideredExtents == 0 {
				return 0, fmt.Errorf("no extents considered")
			}
			return rep.RefreezeFraction, nil
		},
	},
	"BENCH_JOIN.json": {
		Metric:         "geomean merge-vs-hash speedup",
		HigherIsBetter: true,
		Extract: func(data []byte) (float64, error) {
			var rep JoinKernelReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			logSum, n := 0.0, 0
			for _, r := range rep.Rows {
				if r.Speedup > 0 {
					logSum += math.Log(r.Speedup)
					n++
				}
			}
			if n == 0 {
				return 0, fmt.Errorf("no speedup rows")
			}
			return math.Exp(logSum / float64(n)), nil
		},
	},
	"BENCH_SERVE.json": {
		Metric:         "cache hit rate",
		HigherIsBetter: true,
		Extract: func(data []byte) (float64, error) {
			var rep ServeReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			if rep.Requests == 0 {
				return 0, fmt.Errorf("no requests recorded")
			}
			return rep.HitRate, nil
		},
	},
	"BENCH_SHARD.json": {
		Metric:         "4-shard cache hit rate",
		HigherIsBetter: true,
		Extract: func(data []byte) (float64, error) {
			var rep ShardReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			if rep.HitRate4 <= 0 {
				return 0, fmt.Errorf("no 4-shard run recorded")
			}
			return rep.HitRate4, nil
		},
	},
	"BENCH_FOOTPRINT.json": {
		Metric:         "mean compressed bytes per edge",
		HigherIsBetter: false,
		Extract: func(data []byte) (float64, error) {
			var rep FootprintReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			if len(rep.Rows) == 0 {
				return 0, fmt.Errorf("no footprint rows")
			}
			for _, r := range rep.Rows {
				if !r.Agreed {
					return 0, fmt.Errorf("forms disagreed on %s", r.Dataset)
				}
			}
			if rep.MeanCompressedBPE > 12 {
				return 0, fmt.Errorf("compressed footprint %.2f B/edge exceeds the 12 B/edge bar", rep.MeanCompressedBPE)
			}
			if rep.GeomeanLatencyRatio > 1.15 {
				return 0, fmt.Errorf("compressed serving latency %.2fx flat exceeds the 1.15x bar", rep.GeomeanLatencyRatio)
			}
			return rep.MeanCompressedBPE, nil
		},
	},
	"BENCH_PLANNER.json": {
		Metric:         "geomean planner speedup",
		HigherIsBetter: true,
		Extract: func(data []byte) (float64, error) {
			var rep PlannerReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			if len(rep.Rows) == 0 {
				return 0, fmt.Errorf("no planner rows")
			}
			if !rep.Agreed {
				return 0, fmt.Errorf("planner settings disagreed on results or cost")
			}
			if rep.GeomeanSpeedup < 1.3 {
				return 0, fmt.Errorf("planner speedup %.2fx is below the 1.3x bar", rep.GeomeanSpeedup)
			}
			if rep.CacheHitRate < 0.9 {
				return 0, fmt.Errorf("steady-state plan-cache hit rate %.1f%% is below the 90%% bar", 100*rep.CacheHitRate)
			}
			return rep.GeomeanSpeedup, nil
		},
	},
	"BENCH_DRIFT.json": {
		Metric:         "off/on settled cost degradation",
		HigherIsBetter: true,
		Extract: func(data []byte) (float64, error) {
			var rep DriftReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			// Hard invariants first — wall-clock p99 is too noisy on shared
			// runners to gate, so the contract is the deterministic logical
			// story: the controller must adapt once the workload shifts
			// (without thrashing), pull family B onto the fast path, and
			// hold the settled cost per evaluated query near the pre-shift
			// level, while the controller-off run demonstrably degrades.
			if rep.On.Adapts < 1 {
				return 0, fmt.Errorf("controller never adapted after the workload shift")
			}
			if rep.On.Adapts > rep.ThrashBound {
				return 0, fmt.Errorf("controller thrashed: %d adapts exceed the %d bound", rep.On.Adapts, rep.ThrashBound)
			}
			if rep.Off.Adapts != 0 {
				return 0, fmt.Errorf("controller-off run reported %d adapts", rep.Off.Adapts)
			}
			if rep.On.BRequiredPaths < 1 {
				return 0, fmt.Errorf("controller-on index never required a shifted-family path")
			}
			if rep.Off.BRequiredPaths != 0 {
				return 0, fmt.Errorf("controller-off index requires %d shifted-family paths", rep.Off.BRequiredPaths)
			}
			if rep.On.SettledP99Ratio > 1.2 {
				return 0, fmt.Errorf("controller-on settled p99 is %.2fx pre-shift, above the 1.2x bar", rep.On.SettledP99Ratio)
			}
			if rep.On.SettledCostRatio > 1.5 {
				return 0, fmt.Errorf("controller-on settled cost/eval is %.2fx pre-shift, above the 1.5x bar", rep.On.SettledCostRatio)
			}
			if rep.Off.SettledCostRatio < 2.0 {
				return 0, fmt.Errorf("controller-off settled cost/eval only degraded %.2fx — the shift never hurt", rep.Off.SettledCostRatio)
			}
			if rep.OffOnCostRatio <= 0 {
				return 0, fmt.Errorf("no cost ratio recorded")
			}
			return rep.OffOnCostRatio, nil
		},
	},
	"BENCH_RECOVERY.json": {
		Metric:         "restart speedup",
		HigherIsBetter: true,
		Extract: func(data []byte) (float64, error) {
			var rep RecoveryReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return 0, err
			}
			if !rep.Identical {
				return 0, fmt.Errorf("recovered index diverged from the reference rebuild")
			}
			if rep.Speedup <= 0 {
				return 0, fmt.Errorf("no speedup recorded")
			}
			return rep.Speedup, nil
		},
	},
}

// Comparison is one artifact's baseline-versus-current verdict.
type Comparison struct {
	Artifact       string  `json:"artifact"`
	Metric         string  `json:"metric"`
	HigherIsBetter bool    `json:"higher_is_better"`
	Baseline       float64 `json:"baseline"`
	Current        float64 `json:"current"`
	// Change is the relative move in the metric's bad direction: positive
	// values are regressions, negative improvements.
	Change    float64 `json:"change"`
	Regressed bool    `json:"regressed"`
}

func (c Comparison) String() string {
	verdict := "ok"
	if c.Regressed {
		verdict = "REGRESSED"
	} else if c.Change < 0 {
		verdict = "improved"
	}
	return fmt.Sprintf("%-22s %-28s baseline=%.4f current=%.4f change=%+.1f%% %s",
		c.Artifact, c.Metric, c.Baseline, c.Current, 100*c.Change, verdict)
}

// CompareArtifact judges one artifact: tolerance is the allowed relative
// regression (0.20 = one fifth worse than baseline fails).
func CompareArtifact(name string, baseline, current []byte, tolerance float64) (Comparison, error) {
	spec, ok := headlines[name]
	if !ok {
		known := make([]string, 0, len(headlines))
		for k := range headlines {
			known = append(known, k)
		}
		sort.Strings(known)
		return Comparison{}, fmt.Errorf("bench: no headline metric for %q (known: %s)", name, strings.Join(known, ", "))
	}
	base, err := spec.Extract(baseline)
	if err != nil {
		return Comparison{}, fmt.Errorf("bench: baseline %s: %w", name, err)
	}
	cur, err := spec.Extract(current)
	if err != nil {
		return Comparison{}, fmt.Errorf("bench: current %s: %w", name, err)
	}
	if base <= 0 {
		return Comparison{}, fmt.Errorf("bench: baseline %s: non-positive headline %g", name, base)
	}
	c := Comparison{
		Artifact:       name,
		Metric:         spec.Metric,
		HigherIsBetter: spec.HigherIsBetter,
		Baseline:       base,
		Current:        cur,
	}
	if spec.HigherIsBetter {
		c.Change = (base - cur) / base
	} else {
		c.Change = (cur - base) / base
	}
	c.Regressed = c.Change > tolerance
	return c, nil
}

// CompareDirs judges every baseline artifact in baselineDir against its
// counterpart in currentDir. A baseline whose current artifact is missing is
// a hard error — a benchmark silently dropped from the run must fail the
// gate, not pass it — and an empty baseline directory is equally an error.
func CompareDirs(baselineDir, currentDir string, tolerance float64) ([]Comparison, error) {
	entries, err := os.ReadDir(baselineDir)
	if err != nil {
		return nil, err
	}
	var comps []Comparison
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		baseline, err := os.ReadFile(filepath.Join(baselineDir, e.Name()))
		if err != nil {
			return nil, err
		}
		current, err := os.ReadFile(filepath.Join(currentDir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("bench: baseline %s has no current artifact in %s (benchmark dropped from the run?): %w",
				e.Name(), currentDir, err)
		}
		c, err := CompareArtifact(e.Name(), baseline, current, tolerance)
		if err != nil {
			return nil, err
		}
		comps = append(comps, c)
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("bench: no baseline artifacts in %s", baselineDir)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Artifact < comps[j].Artifact })
	return comps, nil
}

// Regressions filters the failed comparisons.
func Regressions(comps []Comparison) []Comparison {
	var bad []Comparison
	for _, c := range comps {
		if c.Regressed {
			bad = append(bad, c)
		}
	}
	return bad
}
