package bench

import (
	"fmt"

	"apex/internal/query"
)

// ExplainTraces builds an adapted APEX over the named dataset and returns
// one EXPLAIN trace per query class (the first sampled QTYPE1, QTYPE2, and
// QTYPE3 query), for the bench CLI's "explain" experiment and the
// EXPERIMENTS.md cost discussion.
func (e *Env) ExplainTraces(name string) ([]*query.Trace, error) {
	s, err := e.site(name)
	if err != nil {
		return nil, err
	}
	idx := s.buildAPEX(e.cfg.FixedMinSup)
	ev := query.NewAPEXEvaluator(idx, s.dt)
	var qs []query.Query
	for _, pop := range [][]query.Query{s.q1, s.q2, s.q3} {
		if len(pop) > 0 {
			qs = append(qs, pop[0])
		}
	}
	traces := make([]*query.Trace, 0, len(qs))
	for _, q := range qs {
		_, tr, err := ev.EvaluateTrace(q)
		if err != nil {
			return nil, fmt.Errorf("explain %s on %s: %w", q, name, err)
		}
		traces = append(traces, tr)
	}
	return traces, nil
}
