package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"apex"
	"apex/internal/core"
	"apex/internal/metrics"
	"apex/internal/query"
)

// AdaptStallReport measures the three claims of the off-critical-path
// maintenance design on one dataset:
//
//   - Shadow publication: reader latency while adaptation rounds churn in the
//     background. The interesting column is ReaderMax against MaintMax — a
//     reader used to stall for a whole rebuild; now it stalls only for the
//     publication swap, so StallRatio collapses far below 1.
//   - Parallel maintenance: the wall time of the same build+adapt cycle with
//     the fan-out bound at 1 versus NumCPU (identical output structures).
//   - Dirty-extent freezing: across the incremental rounds, the fraction of
//     extents actually re-sorted and subtree caches actually recollected,
//     from the process metrics deltas.
type AdaptStallReport struct {
	Dataset    string `json:"dataset"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Readers    int    `json:"readers"`
	Rounds     int    `json:"maintenance_rounds"`
	Queries    int    `json:"reader_queries"`

	ReaderP50 time.Duration `json:"reader_p50_ns"`
	ReaderP99 time.Duration `json:"reader_p99_ns"`
	ReaderMax time.Duration `json:"reader_max_ns"`

	MaintP50   time.Duration `json:"maint_p50_ns"`
	MaintMax   time.Duration `json:"maint_max_ns"`
	StallRatio float64       `json:"stall_ratio"` // ReaderMax / MaintMax

	SerialMaint   time.Duration `json:"serial_maint_ns"`
	ParallelMaint time.Duration `json:"parallel_maint_ns"`
	MaintSpeedup  float64       `json:"maint_speedup"`

	FrozenExtents       int64   `json:"frozen_extents"`
	ConsideredExtents   int64   `json:"considered_extents"`
	RefreezeFraction    float64 `json:"refreeze_fraction"`
	SubtreesRecollected int64   `json:"subtrees_recollected"`
	SubtreesConsidered  int64   `json:"subtrees_considered"`
	RecollectFraction   float64 `json:"recollect_fraction"`
}

// AdaptStall runs the off-critical-path maintenance experiment: readers
// hammer the index while rounds of adaptation alternate between two drifted
// workloads, then the same maintenance cycle is re-timed serially and with
// the full worker pool.
func (e *Env) AdaptStall(dataset string, readers, rounds int) (AdaptStallReport, error) {
	s, err := e.site(dataset)
	if err != nil {
		return AdaptStallReport{}, err
	}
	qs := make([]string, len(s.q1))
	for i, q := range s.q1 {
		qs[i] = q.String()
	}
	// Two drifted workloads: adaptation between them is incremental but not
	// a no-op, which is exactly the regime dirty freezing targets.
	var wlA, wlB []string
	for i, p := range s.wl {
		q := query.Query{Type: query.QTYPE1, Path: p}.String()
		if i%2 == 0 {
			wlA = append(wlA, q)
		} else {
			wlB = append(wlB, q)
		}
	}
	if len(wlA) == 0 || len(wlB) == 0 {
		return AdaptStallReport{}, fmt.Errorf("bench: workload too small to split for %s", dataset)
	}

	ix, err := apex.FromGraph(s.ds.Graph, &apex.Options{
		Parallelism:     0, // GOMAXPROCS for both queries and maintenance
		DisableQueryLog: true,
	})
	if err != nil {
		return AdaptStallReport{}, err
	}
	// Warm-up round outside every measurement window: the first adaptation
	// after APEX0 restructures far more than a drift round does.
	if err := ix.AdaptTo(wlA, e.cfg.FixedMinSup); err != nil {
		return AdaptStallReport{}, err
	}

	frozen := metrics.Default.Counter("core.gapex.frozen_extents_total")
	considered := metrics.Default.Counter("core.gapex.freeze_considered_total")
	recollected := metrics.Default.Counter("core.hapex.subtrees_recollected_total")
	subtrees := metrics.Default.Counter("core.hapex.subtrees_considered_total")
	frozen0, considered0 := frozen.Value(), considered.Value()
	recollected0, subtrees0 := recollected.Value(), subtrees.Value()

	// Readers run for the whole maintenance churn, recording per-query wall
	// times; any stall the publication path imposes shows up as a latency
	// outlier here.
	stop := make(chan struct{})
	lats := make([][]time.Duration, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := ix.Query(qs[(r+i)%len(qs)]); err != nil {
					errs[r] = err
					return
				}
				lats[r] = append(lats[r], time.Since(t0))
			}
		}(r)
	}

	maintWalls := make([]time.Duration, 0, rounds)
	var maintErr error
	for i := 0; i < rounds; i++ {
		wl := wlA
		if i%2 == 0 {
			wl = wlB
		}
		t0 := time.Now()
		if maintErr = ix.AdaptTo(wl, e.cfg.FixedMinSup); maintErr != nil {
			break
		}
		maintWalls = append(maintWalls, time.Since(t0))
		// Let readers breathe between rounds so the sample includes both
		// quiescent and mid-rebuild latencies.
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if maintErr != nil {
		return AdaptStallReport{}, maintErr
	}
	for _, err := range errs {
		if err != nil {
			return AdaptStallReport{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return AdaptStallReport{}, fmt.Errorf("bench: readers recorded no queries on %s", dataset)
	}

	rep := AdaptStallReport{
		Dataset:    dataset,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Readers:    readers,
		Rounds:     len(maintWalls),
		Queries:    len(all),
		ReaderP50:  percentileDuration(all, 0.50),
		ReaderP99:  percentileDuration(all, 0.99),
		ReaderMax:  percentileDuration(all, 1.0),
		MaintP50:   percentileDuration(maintWalls, 0.50),
		MaintMax:   percentileDuration(maintWalls, 1.0),
	}
	if rep.MaintMax > 0 {
		rep.StallRatio = float64(rep.ReaderMax) / float64(rep.MaintMax)
	}

	rep.FrozenExtents = frozen.Value() - frozen0
	rep.ConsideredExtents = considered.Value() - considered0
	if rep.ConsideredExtents > 0 {
		rep.RefreezeFraction = float64(rep.FrozenExtents) / float64(rep.ConsideredExtents)
	}
	rep.SubtreesRecollected = recollected.Value() - recollected0
	rep.SubtreesConsidered = subtrees.Value() - subtrees0
	if rep.SubtreesConsidered > 0 {
		rep.RecollectFraction = float64(rep.SubtreesRecollected) / float64(rep.SubtreesConsidered)
	}

	// Serial vs parallel maintenance wall: the same build+adapt cycle on
	// private core indexes (the structures come out bit-identical, so the
	// comparison is pure wall time).
	rep.SerialMaint = timeMaintCycle(s, e.cfg.FixedMinSup, 1)
	rep.ParallelMaint = timeMaintCycle(s, e.cfg.FixedMinSup, runtime.NumCPU())
	if rep.ParallelMaint > 0 {
		rep.MaintSpeedup = float64(rep.SerialMaint) / float64(rep.ParallelMaint)
	}
	return rep, nil
}

// timeMaintCycle times one full build+adapt maintenance cycle at the given
// worker bound.
func timeMaintCycle(s *siteData, minSup float64, workers int) time.Duration {
	t0 := time.Now()
	a := core.BuildAPEX0Workers(s.ds.Graph, workers)
	a.ExtractFrequentPaths(s.wl, minSup)
	a.Update()
	return time.Since(t0)
}

// percentileDuration returns the q-quantile (0 ≤ q ≤ 1) of ds by sorting a
// copy; q = 1 is the maximum.
func percentileDuration(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RenderAdaptStall prints the report as a small table.
func RenderAdaptStall(rep AdaptStallReport) string {
	var b []byte
	b = fmt.Appendf(b, "Off-critical-path maintenance (%s, GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.Dataset, rep.GoMaxProcs, rep.NumCPU)
	b = fmt.Appendf(b, "readers=%d queries=%d maintenance rounds=%d\n", rep.Readers, rep.Queries, rep.Rounds)
	b = fmt.Appendf(b, "reader latency: p50=%v p99=%v max=%v\n",
		rep.ReaderP50, rep.ReaderP99, rep.ReaderMax)
	b = fmt.Appendf(b, "maintenance wall: p50=%v max=%v  stall ratio (reader max / maint max) = %.3f\n",
		rep.MaintP50, rep.MaintMax, rep.StallRatio)
	b = fmt.Appendf(b, "maintenance cycle: serial=%v parallel=%v speedup=%.2fx\n",
		rep.SerialMaint, rep.ParallelMaint, rep.MaintSpeedup)
	b = fmt.Appendf(b, "dirty freezing: refroze %d of %d extents (%.1f%%), recollected %d of %d subtree caches (%.1f%%)\n",
		rep.FrozenExtents, rep.ConsideredExtents, 100*rep.RefreezeFraction,
		rep.SubtreesRecollected, rep.SubtreesConsidered, 100*rep.RecollectFraction)
	return string(b)
}

// WriteAdaptStallJSON records the report for per-PR trajectory tracking (the
// CI benchmark job uploads it as BENCH_ADAPT.json).
func WriteAdaptStallJSON(w io.Writer, rep AdaptStallReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
