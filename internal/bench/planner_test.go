package bench

import (
	"strings"
	"testing"
)

// TestPlannerShape pins the planner ablation's claims at test scale: both
// settings agree on results and logical cost on every row (the experiment
// hard-errors otherwise), the steady-state cache hit rate is perfect on a
// closed replay workload, and the planner actually engages (forward plans
// recorded, not all fallbacks). Speedup magnitudes are left to the
// full-scale BENCH_PLANNER.json benchcheck gate — at shape scale the
// batches are too small for stable ratios.
func TestPlannerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are not -short")
	}
	env := NewEnv(shapeConfig())
	rep, err := env.Planner([]string{"shakes_11.xml", "Ged02.xml"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no planner rows")
	}
	if !rep.Agreed {
		t.Fatal("planner settings disagreed")
	}
	var forward int64
	for _, r := range rep.Rows {
		if !r.Agreed {
			t.Fatalf("%s/%s: row not agreed", r.Dataset, r.Workload)
		}
		if r.On.Results != r.Off.Results || r.On.CostTotal != r.Off.CostTotal {
			t.Fatalf("%s/%s: on(results=%d cost=%d) off(results=%d cost=%d)",
				r.Dataset, r.Workload, r.On.Results, r.On.CostTotal, r.Off.Results, r.Off.CostTotal)
		}
		if r.CacheHitRate < 0.9 {
			t.Fatalf("%s/%s: steady-state hit rate %.2f below 0.9", r.Dataset, r.Workload, r.CacheHitRate)
		}
		if r.Speedup <= 0 || r.On.QPS <= 0 || r.Off.QPS <= 0 {
			t.Fatalf("%s/%s: degenerate timing: %+v", r.Dataset, r.Workload, r)
		}
		forward += r.Forward
	}
	if forward == 0 {
		t.Fatal("planner never produced a forward plan")
	}
	if rep.GeomeanSpeedup <= 0 {
		t.Fatalf("geomean %.2f", rep.GeomeanSpeedup)
	}

	table := RenderPlanner(rep)
	for _, want := range []string{"Planner ablation", "geomean speedup", "agreed=true"} {
		if !strings.Contains(table, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, table)
		}
	}
	var sb strings.Builder
	if err := WritePlannerJSON(&sb, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"geomean_speedup\"") {
		t.Fatalf("JSON artifact missing geomean field:\n%s", sb.String())
	}
}
