// Shard-vs-single differential harness: on every seed dataset, a random
// mixed workload must produce position-identical results from a 3-shard
// scatter-gather router and a single index built over the same document —
// after the initial build, after adaptation, after an insert, and after a
// delete. The router shares no evaluation state with the single index (each
// shard evaluates its own subgraph and the merge reassembles document
// order), so agreement across random queries exercises the partitioning,
// the reference closure, the write broadcast, and the k-way merge at once.
// The summed per-shard logical costs must also stay consistent with the
// single evaluator: sharding splits and replicates work, it never loses it,
// so the shard sum can only meet or exceed the single-index cost.
package bench

import (
	"context"
	"strings"
	"testing"

	"apex"
	"apex/internal/datagen"
	"apex/internal/shard"
	"apex/internal/workload"
	"apex/internal/xmlgraph"
)

const (
	shardDiffScale  = 0.02
	shardDiffSeed   = 7
	shardDiffShards = 3
)

// shardDiffQueries samples the mixed random workload as canonical strings.
func shardDiffQueries(g *xmlgraph.Graph) []string {
	gen := workload.New(g, shardDiffSeed)
	qs := gen.QType1(40)
	qs = append(qs, gen.QType2(8)...)
	qs = append(qs, gen.QType3(12)...)
	qs = append(qs, gen.QMixed(5)...)
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.String()
	}
	return out
}

// shardCostTotal sums the cumulative logical cost over every shard
// evaluator (CarryCostFrom keeps each cumulative across publications).
func shardCostTotal(local []*shard.LocalBackend) int64 {
	var total int64
	for _, b := range local {
		total += b.Index().Evaluator().Cost().Total()
	}
	return total
}

// assertShardAgree evaluates every query on both sides and requires
// position-identical materialized results, then checks the phase's cost
// deltas: the shard sum must be at least the single-index cost (per-shard
// traversal overhead and closure replication add work, never remove it).
func assertShardAgree(t *testing.T, phase string, single *apex.Index, rt *shard.Router, local []*shard.LocalBackend, queries []string) {
	t.Helper()
	ctx := context.Background()
	singleBefore := single.Evaluator().Cost().Total()
	shardBefore := shardCostTotal(local)
	for _, q := range queries {
		want, err := single.QueryContext(ctx, q)
		if err != nil {
			t.Fatalf("%s: single index on %s: %v", phase, q, err)
		}
		got, _, err := rt.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: router on %s: %v", phase, q, err)
		}
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("%s: %s: router %d nodes, single %d nodes",
				phase, q, len(got.Nodes), len(want.Nodes))
		}
		for i := range want.Nodes {
			if got.Nodes[i] != want.Nodes[i] {
				t.Fatalf("%s: %s: position %d: router %+v, single %+v",
					phase, q, i, got.Nodes[i], want.Nodes[i])
			}
		}
	}
	singleDelta := single.Evaluator().Cost().Total() - singleBefore
	shardDelta := shardCostTotal(local) - shardBefore
	if singleDelta <= 0 {
		t.Fatalf("%s: single index recorded no evaluation cost", phase)
	}
	if shardDelta < singleDelta {
		t.Fatalf("%s: shard cost sum %d below single-index cost %d — shards skipped work",
			phase, shardDelta, singleDelta)
	}
}

// deleteTargetPath picks a grandchild-of-root element tag as the delete
// target: a two-step path every dataset has, matched (and removed) on both
// sides through their own evaluators.
func deleteTargetPath(t *testing.T, g *xmlgraph.Graph) string {
	t.Helper()
	root := g.Root()
	for _, ce := range g.Out(root) {
		if strings.HasPrefix(ce.Label, "@") {
			continue
		}
		for _, ge := range g.Out(ce.To) {
			if strings.HasPrefix(ge.Label, "@") {
				continue
			}
			if par, label, ok := g.HierarchyParent(ge.To); ok && par == ce.To && label == ge.Label {
				return "//" + ce.Label + "/" + ge.Label
			}
		}
	}
	t.Fatal("no grandchild-of-root element to delete")
	return ""
}

func TestShardDifferentialAllDatasets(t *testing.T) {
	ctx := context.Background()
	for _, name := range datasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ds, err := datagen.LoadDataset(name, shardDiffScale)
			if err != nil {
				t.Fatal(err)
			}
			g := ds.Graph
			single, err := apex.FromGraph(g, &apex.Options{})
			if err != nil {
				t.Fatal(err)
			}
			local, plan, err := shard.BuildLocal(g, shardDiffShards, &apex.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if plan.NumUnits() == 0 {
				t.Fatal("partition found no units")
			}
			rt := shard.NewRouter(shard.Backends(local), 0)
			queries := shardDiffQueries(g)

			// Phase 1: the initial per-shard APEX0 indexes.
			assertShardAgree(t, "build", single, rt, local, queries)

			// Phase 2: after adaptation. Both sides restructure for the same
			// explicit workload, one AdaptTo per shard.
			wl := make([]string, 0, 60)
			for _, q := range workload.New(g, shardDiffSeed).QType1(60) {
				wl = append(wl, q.String())
			}
			if err := single.AdaptTo(wl, 0.01); err != nil {
				t.Fatal(err)
			}
			if err := rt.Adapt(-1, wl, 0.01); err != nil {
				t.Fatal(err)
			}
			assertShardAgree(t, "adapted", single, rt, local, queries)

			// Phase 3: after an insert under the root. The fragment's labels
			// are new to every index, and the router broadcast must keep the
			// shard node tables aligned with the single index's.
			const frag = `<difftest><diffchild>diffvalue</diffchild></difftest>`
			if err := single.Insert("/", frag); err != nil {
				t.Fatal(err)
			}
			if err := rt.Insert(ctx, "/", frag); err != nil {
				t.Fatal(err)
			}
			queries = append(queries, "//difftest/diffchild")
			assertShardAgree(t, "inserted", single, rt, local, queries)

			// Phase 4: after deleting every match of a grandchild-of-root
			// element path, resolved independently on each side.
			target := deleteTargetPath(t, g)
			if err := single.Delete(target); err != nil {
				t.Fatalf("single delete %s: %v", target, err)
			}
			if _, err := rt.Delete(ctx, target); err != nil {
				t.Fatalf("router delete %s: %v", target, err)
			}
			assertShardAgree(t, "deleted", single, rt, local, queries)
		})
	}
}
