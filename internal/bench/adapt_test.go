package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAdaptStallShape(t *testing.T) {
	env := NewEnv(tinyConfig())
	rep, err := env.AdaptStall("Flix02.xml", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dataset != "Flix02.xml" || rep.Readers != 2 {
		t.Fatalf("report misidentifies its run: %+v", rep)
	}
	if rep.Rounds != 3 {
		t.Fatalf("maintenance rounds = %d, want 3", rep.Rounds)
	}
	if rep.Queries <= 0 {
		t.Fatalf("readers recorded no queries: %+v", rep)
	}
	if rep.ReaderP50 <= 0 || rep.ReaderP99 < rep.ReaderP50 || rep.ReaderMax < rep.ReaderP99 {
		t.Fatalf("reader percentiles not monotone: p50=%v p99=%v max=%v",
			rep.ReaderP50, rep.ReaderP99, rep.ReaderMax)
	}
	if rep.MaintP50 <= 0 || rep.MaintMax < rep.MaintP50 {
		t.Fatalf("maintenance percentiles not monotone: p50=%v max=%v", rep.MaintP50, rep.MaintMax)
	}
	if rep.StallRatio <= 0 {
		t.Fatalf("stall ratio not computed: %+v", rep)
	}
	if rep.SerialMaint <= 0 || rep.ParallelMaint <= 0 || rep.MaintSpeedup <= 0 {
		t.Fatalf("maintenance cycle timings not recorded: %+v", rep)
	}
	if rep.GoMaxProcs <= 0 || rep.NumCPU <= 0 {
		t.Fatalf("host parallelism not recorded: %+v", rep)
	}
	// The churn rounds alternate two drifted workloads, so every round is
	// incremental: dirty freezing must refreeze something, but never
	// everything the pass considered.
	if rep.FrozenExtents <= 0 || rep.ConsideredExtents <= rep.FrozenExtents {
		t.Fatalf("dirty freezing did not skip clean extents: refroze %d of %d",
			rep.FrozenExtents, rep.ConsideredExtents)
	}
	if rep.RefreezeFraction <= 0 || rep.RefreezeFraction >= 1 {
		t.Fatalf("refreeze fraction out of (0,1): %v", rep.RefreezeFraction)
	}
	if rep.SubtreesRecollected < 0 || rep.SubtreesConsidered < rep.SubtreesRecollected {
		t.Fatalf("subtree recollection counts inconsistent: %d of %d",
			rep.SubtreesRecollected, rep.SubtreesConsidered)
	}

	out := RenderAdaptStall(rep)
	for _, want := range []string{"reader latency", "stall ratio", "dirty freezing", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := WriteAdaptStallJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back AdaptStallReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != rep {
		t.Fatalf("JSON round trip mangled the report:\n got %+v\nwant %+v", back, rep)
	}
}

func TestPercentileDuration(t *testing.T) {
	ds := []time.Duration{50, 10, 40, 20, 30}
	if got := percentileDuration(ds, 0); got != 10 {
		t.Fatalf("q=0: got %v, want 10", got)
	}
	if got := percentileDuration(ds, 0.5); got != 30 {
		t.Fatalf("q=0.5: got %v, want 30", got)
	}
	if got := percentileDuration(ds, 1.0); got != 50 {
		t.Fatalf("q=1: got %v, want 50", got)
	}
	if got := percentileDuration(nil, 0.5); got != 0 {
		t.Fatalf("empty: got %v, want 0", got)
	}
	// The input must come back untouched: percentile sorts a copy.
	if ds[0] != 50 || ds[4] != 30 {
		t.Fatalf("input mutated: %v", ds)
	}
}
