package bench

import (
	"strings"
	"testing"
)

// tinyConfig keeps driver tests fast.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.01
	c.NumQ1, c.NumQ2, c.NumQ3 = 60, 10, 15
	c.MinSups = []float64{0.01, 0.05}
	return c
}

func TestTable1AllDatasets(t *testing.T) {
	env := NewEnv(tinyConfig())
	rows, err := env.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Nodes == 0 || r.Stats.Edges == 0 {
			t.Fatalf("empty dataset %s", r.Dataset)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Ged03.xml") {
		t.Fatalf("render missing dataset:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	env := NewEnv(tinyConfig())
	rows, err := env.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// APEX0 is the most compact structure (Section 6.2).
		for ms, ne := range r.APEX {
			if ne[0] < r.APEX0[0] {
				t.Fatalf("%s: APEX(%g) nodes %d below APEX0 %d", r.Dataset, ms, ne[0], r.APEX0[0])
			}
		}
		if r.SDG[0] == 0 || r.OneIndex[0] == 0 {
			t.Fatalf("%s: missing baseline sizes", r.Dataset)
		}
	}
	out := RenderTable2(rows, env.Config().MinSups)
	if !strings.Contains(out, "Nodes") || !strings.Contains(out, "Edges") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig13PlaysRuns(t *testing.T) {
	env := NewEnv(tinyConfig())
	rows, err := env.Fig13("plays")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// All indexes answer the same queries: result counts must agree.
		if r.SDG.Results != r.APEX0.Results {
			t.Fatalf("%s: SDG %d results, APEX0 %d", r.Dataset, r.SDG.Results, r.APEX0.Results)
		}
		for ms, rr := range r.APEX {
			if rr.Results != r.SDG.Results {
				t.Fatalf("%s: APEX(%g) %d results, SDG %d", r.Dataset, ms, rr.Results, r.SDG.Results)
			}
		}
	}
	_ = RenderFig13("plays", rows, env.Config().MinSups)
}

func TestFig14AgreesAcrossIndexes(t *testing.T) {
	env := NewEnv(tinyConfig())
	rows, err := env.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SDG.Results != r.APEX0.Results || r.SDG.Results != r.APEX.Results {
			t.Fatalf("%s: result mismatch SDG=%d APEX0=%d APEX=%d",
				r.Dataset, r.SDG.Results, r.APEX0.Results, r.APEX.Results)
		}
	}
	_ = RenderFig14(rows)
}

func TestFig15AgreesAcrossIndexes(t *testing.T) {
	env := NewEnv(tinyConfig())
	rows, err := env.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Fabric.Results != r.SDG.Results || r.SDG.Results != r.APEX.Results {
			t.Fatalf("%s: result mismatch Fabric=%d SDG=%d APEX=%d",
				r.Dataset, r.Fabric.Results, r.SDG.Results, r.APEX.Results)
		}
		if r.Fabric.Results == 0 {
			t.Fatalf("%s: QTYPE3 produced no results at all", r.Dataset)
		}
	}
	_ = RenderFig15(rows)
}

func TestAblationFastPath(t *testing.T) {
	env := NewEnv(tinyConfig())
	on, off, err := env.AblationFastPath("Flix01.xml")
	if err != nil {
		t.Fatal(err)
	}
	if on.Results != off.Results {
		t.Fatalf("result mismatch: %d vs %d", on.Results, off.Results)
	}
	if on.Cost.Total() >= off.Cost.Total() {
		t.Fatalf("fast path should reduce cost: on=%d off=%d", on.Cost.Total(), off.Cost.Total())
	}
}

func TestAblationRefinement(t *testing.T) {
	env := NewEnv(tinyConfig())
	refined, plain, err := env.AblationRefinement("Flix01.xml")
	if err != nil {
		t.Fatal(err)
	}
	if refined.Results != plain.Results {
		t.Fatalf("result mismatch: %d vs %d", refined.Results, plain.Results)
	}
	if refined.Cost.ExtentEdges > plain.Cost.ExtentEdges {
		t.Fatalf("refined joins scanned more: %d vs %d", refined.Cost.ExtentEdges, plain.Cost.ExtentEdges)
	}
}

func TestAblationQ2Rewriting(t *testing.T) {
	env := NewEnv(tinyConfig())
	paper, product, err := env.AblationQ2Rewriting("Ged01.xml")
	if err != nil {
		t.Fatal(err)
	}
	if paper.Results != product.Results {
		t.Fatalf("result mismatch: %d vs %d", paper.Results, product.Results)
	}
	_ = RenderAblation("q2", paper, product)
}

func TestAblationFabricScan(t *testing.T) {
	env := NewEnv(tinyConfig())
	full, layered, err := env.AblationFabricScan("Ged01.xml")
	if err != nil {
		t.Fatal(err)
	}
	if full.Results != layered.Results {
		t.Fatalf("result mismatch: %d vs %d", full.Results, layered.Results)
	}
}

func TestAblationUpdate(t *testing.T) {
	env := NewEnv(tinyConfig())
	inc, reb, err := env.AblationUpdate("Flix01.xml")
	if err != nil {
		t.Fatal(err)
	}
	if inc <= 0 || reb <= 0 {
		t.Fatalf("non-positive durations: %v %v", inc, reb)
	}
}

func TestAblationExtentStorage(t *testing.T) {
	env := NewEnv(tinyConfig())
	stored, naive, err := env.AblationExtentStorage("Flix01.xml")
	if err != nil {
		t.Fatal(err)
	}
	if stored <= 0 || naive < stored {
		t.Fatalf("extent accounting odd: stored=%d naive=%d", stored, naive)
	}
}

func TestCompareASR(t *testing.T) {
	env := NewEnv(tinyConfig())
	cmp, err := env.CompareASR("Flix01.xml")
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.ResultsAgreed {
		t.Fatal("ASR and APEX disagree on QTYPE1 results")
	}
	if cmp.Relations == 0 || cmp.Tuples == 0 {
		t.Fatalf("no relations materialized: %+v", cmp)
	}
}

func TestCompareMixed(t *testing.T) {
	env := NewEnv(tinyConfig())
	cmp, err := env.CompareMixed("Flix01.xml", 15)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.ResultsOK {
		t.Fatalf("APEX %d results, SDG %d on mixed queries", cmp.APEX.Results, cmp.SDG.Results)
	}
}

func TestEnvCachesDatasets(t *testing.T) {
	env := NewEnv(tinyConfig())
	a, err := env.site("Flix01.xml")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := env.site("Flix01.xml")
	if a != b {
		t.Fatal("site not cached")
	}
}
