package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"apex"
	"apex/internal/server"
)

// ServeReport measures the serving layer end to end: concurrent clients
// replay a bounded query set over real HTTP against apexd's handler while
// one POST /adapt restructures the index mid-run. The headline number is the
// cache hit rate — a bounded replayed workload should be absorbed almost
// entirely by the snapshot-keyed result cache, paying evaluation only for
// first sights and for the re-misses right after the publication — plus the
// client-observed hit/miss latency split.
type ServeReport struct {
	Dataset  string `json:"dataset"`
	Clients  int    `json:"clients"`
	Rounds   int    `json:"rounds"`
	Distinct int    `json:"distinct_queries"`

	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	Invalidated int64   `json:"invalidated"`
	Generation  uint64  `json:"final_generation"`

	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	HitP50  time.Duration `json:"hit_p50_ns"`
	MissP50 time.Duration `json:"miss_p50_ns"`
}

// Serve runs the serving-layer experiment on one dataset: clients goroutines
// each replay the same distinct QTYPE1 queries for rounds passes; halfway
// through, one client issues POST /adapt, bumping the generation and
// invalidating the cache, after which every distinct query misses exactly
// once more. Everything travels over a real HTTP listener, so the measured
// latencies include the serving stack, not just evaluation.
func (e *Env) Serve(name string, clients, rounds, distinct int) (ServeReport, error) {
	s, err := e.site(name)
	if err != nil {
		return ServeReport{}, err
	}
	ix, err := apex.FromGraph(s.ds.Graph, &apex.Options{})
	if err != nil {
		return ServeReport{}, err
	}
	srv := server.New(ix, server.Config{MaxInflight: 4 * clients})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := make([]string, 0, distinct)
	for _, q := range s.q1 {
		if len(queries) == cap(queries) {
			break
		}
		queries = append(queries, q.String())
	}
	if len(queries) == 0 {
		return ServeReport{}, fmt.Errorf("bench: serve: dataset %s yielded no queries", name)
	}

	samples, errs, invalidated := replay(ts.Client, []string{ts.URL}, clients, rounds, queries,
		func(client *http.Client) (int64, error) { return postAdapt(client, ts.URL, queries) })

	st := srv.Cache().Stats()
	rep := ServeReport{
		Dataset:     name,
		Clients:     clients,
		Rounds:      rounds,
		Distinct:    len(queries),
		Requests:    int64(len(samples)) + errs,
		Errors:      errs,
		CacheHits:   st.Hits,
		CacheMisses: st.Misses,
		Invalidated: invalidated,
		Generation:  ix.Generation(),
	}
	if total := st.Hits + st.Misses; total > 0 {
		rep.HitRate = float64(st.Hits) / float64(total)
	}
	var all, hits, misses []time.Duration
	for _, s := range samples {
		all = append(all, s.wall)
		if s.cached {
			hits = append(hits, s.wall)
		} else {
			misses = append(misses, s.wall)
		}
	}
	rep.P50 = percentileDuration(all, 0.50)
	rep.P99 = percentileDuration(all, 0.99)
	rep.HitP50 = percentileDuration(hits, 0.50)
	rep.MissP50 = percentileDuration(misses, 0.50)
	return rep, nil
}

// postAdapt issues the mid-run restructuring and returns how many cache
// entries the publication invalidated.
func postAdapt(client *http.Client, base string, queries []string) (int64, error) {
	body, _ := json.Marshal(map[string]any{"queries": queries, "min_sup": 0.01})
	resp, err := client.Post(base+"/adapt", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var ar struct {
		Invalidated int64 `json:"invalidated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("bench: serve: adapt status %d", resp.StatusCode)
	}
	return ar.Invalidated, nil
}

// sample is one replayed request's client-side observation.
type sample struct {
	wall   time.Duration
	cached bool
}

// replay drives the serving workload shared by the serve and shard
// experiments: clients goroutines each replay queries for rounds passes
// against their target (clients round-robin over the target list, so the
// same loop exercises one daemon or a fleet), and client 0 fires adapt —
// when non-nil — halfway through. It returns the client-side samples, the
// error count, and whatever the adapt call reported as invalidated.
func replay(newClient func() *http.Client, targets []string, clients, rounds int, queries []string, adapt func(*http.Client) (int64, error)) (samples []sample, errs, invalidated int64) {
	var mu sync.Mutex
	adaptAfter := rounds / 2
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := newClient()
			base := targets[c%len(targets)]
			local := make([]sample, 0, rounds*len(queries))
			var localErrs int64
			for r := 0; r < rounds; r++ {
				if c == 0 && r == adaptAfter && adapt != nil {
					inv, err := adapt(client)
					mu.Lock()
					if err != nil {
						errs++
					} else {
						invalidated = inv
					}
					mu.Unlock()
				}
				for _, q := range queries {
					body, _ := json.Marshal(map[string]string{"query": q})
					start := time.Now()
					resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
					if err != nil {
						localErrs++
						continue
					}
					var qr struct {
						Cached bool `json:"cached"`
					}
					decErr := json.NewDecoder(resp.Body).Decode(&qr)
					resp.Body.Close()
					if decErr != nil || resp.StatusCode != http.StatusOK {
						localErrs++
						continue
					}
					local = append(local, sample{wall: time.Since(start), cached: qr.Cached})
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			errs += localErrs
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return samples, errs, invalidated
}

// RenderServe formats the serving report.
func RenderServe(rep ServeReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "serving layer (%s): %d clients x %d rounds x %d distinct queries, adapt mid-run\n",
		rep.Dataset, rep.Clients, rep.Rounds, rep.Distinct)
	fmt.Fprintf(&b, "  requests=%d errors=%d generation=%d invalidated=%d\n",
		rep.Requests, rep.Errors, rep.Generation, rep.Invalidated)
	fmt.Fprintf(&b, "  cache: hits=%d misses=%d hit-rate=%.1f%%\n",
		rep.CacheHits, rep.CacheMisses, 100*rep.HitRate)
	fmt.Fprintf(&b, "  latency: p50=%v p99=%v  hit-p50=%v miss-p50=%v\n",
		rep.P50, rep.P99, rep.HitP50, rep.MissP50)
	return b.String()
}

// WriteServeJSON writes the report as indented JSON (the BENCH_SERVE.json
// artifact the regression gate reads).
func WriteServeJSON(w io.Writer, rep ServeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
