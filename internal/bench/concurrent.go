package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"apex"
	"apex/internal/query"
)

// ConcurrencyRow is one (scenario, workers) throughput measurement against
// the public apex.Index facade: Workers goroutines issue Queries workload
// queries over one shared index, with or without a concurrent Adapt loop
// competing for the write lock.
type ConcurrencyRow struct {
	Scenario  string        `json:"scenario"` // "read-only" or "read+adapt"
	Workers   int           `json:"workers"`
	Queries   int           `json:"queries"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	QPS       float64       `json:"qps"`
	Speedup   float64       `json:"speedup_vs_serial"`
	AdaptRuns int           `json:"adapt_runs"` // completed Adapt rounds (read+adapt only)
}

// ConcurrencyReport bundles the sweep with the host parallelism that bounds
// it: on a single-core container the speedup column is necessarily flat, so
// the report records what the hardware allowed.
type ConcurrencyReport struct {
	Dataset    string           `json:"dataset"`
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"numcpu"`
	Rows       []ConcurrencyRow `json:"rows"`
}

// Concurrency measures query throughput of the facade's concurrent read
// path: for each worker count it evaluates total queries striped across the
// workers, first on a read-only index (the ≥2×-at-4-workers scaling
// scenario), then with a background goroutine continuously re-adapting the
// same index (readers must keep flowing between publishes). The 1-worker row
// of each scenario is the serialized baseline its Speedup column is relative
// to.
func (e *Env) Concurrency(dataset string, workerCounts []int, total int) (ConcurrencyReport, error) {
	s, err := e.site(dataset)
	if err != nil {
		return ConcurrencyReport{}, err
	}
	qs := make([]string, len(s.q1))
	for i, q := range s.q1 {
		qs[i] = q.String()
	}
	wl := make([]string, 0, len(s.wl))
	for _, p := range s.wl {
		wl = append(wl, query.Query{Type: query.QTYPE1, Path: p}.String())
	}
	rep := ConcurrencyReport{
		Dataset:    dataset,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	for _, scenario := range []string{"read-only", "read+adapt"} {
		var baseline float64
		for _, w := range workerCounts {
			// A fresh index per run: intra-query parallelism off so the
			// sweep isolates cross-query concurrency, query log only where
			// Adapt needs something to mine.
			ix, err := apex.FromGraph(s.ds.Graph, &apex.Options{
				Parallelism:     1,
				DisableQueryLog: scenario == "read-only",
			})
			if err != nil {
				return ConcurrencyReport{}, err
			}
			if err := ix.AdaptTo(wl, e.cfg.FixedMinSup); err != nil {
				return ConcurrencyReport{}, err
			}
			row, err := runConcurrent(ix, qs, scenario, w, total)
			if err != nil {
				return ConcurrencyReport{}, err
			}
			if w == workerCounts[0] {
				baseline = row.QPS
			}
			if baseline > 0 {
				row.Speedup = row.QPS / baseline
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// runConcurrent times one (scenario, workers) cell.
func runConcurrent(ix *apex.Index, qs []string, scenario string, workers, total int) (ConcurrencyRow, error) {
	var (
		wg        sync.WaitGroup
		firstErr  atomic.Value
		done      atomic.Bool
		adaptRuns int
	)
	if scenario == "read+adapt" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				// The log refills from the racing readers; an empty log
				// between rounds is expected, not an error.
				if err := ix.Adapt(0); err == nil {
					adaptRuns++
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	per := total / workers
	start := time.Now()
	var reader sync.WaitGroup
	for w := 0; w < workers; w++ {
		reader.Add(1)
		go func(w int) {
			defer reader.Done()
			off := w * per
			for i := 0; i < per; i++ {
				if _, err := ix.Query(qs[(off+i)%len(qs)]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	reader.Wait()
	elapsed := time.Since(start)
	done.Store(true)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return ConcurrencyRow{}, err
	}
	n := per * workers
	return ConcurrencyRow{
		Scenario:  scenario,
		Workers:   workers,
		Queries:   n,
		Elapsed:   elapsed,
		QPS:       float64(n) / elapsed.Seconds(),
		AdaptRuns: adaptRuns,
	}, nil
}

// RenderConcurrency prints the sweep as a table.
func RenderConcurrency(rep ConcurrencyReport) string {
	var b []byte
	b = fmt.Appendf(b, "Concurrent query throughput (%s, GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.Dataset, rep.GoMaxProcs, rep.NumCPU)
	b = fmt.Appendf(b, "%-12s %8s %9s %12s %12s %9s %7s\n",
		"scenario", "workers", "queries", "elapsed", "queries/s", "speedup", "adapts")
	for _, r := range rep.Rows {
		b = fmt.Appendf(b, "%-12s %8d %9d %12v %12.0f %8.2fx %7d\n",
			r.Scenario, r.Workers, r.Queries, r.Elapsed.Round(time.Millisecond),
			r.QPS, r.Speedup, r.AdaptRuns)
	}
	return string(b)
}

// WriteConcurrencyJSON records the report for per-PR trajectory tracking
// (the CI benchmark job uploads it as an artifact).
func WriteConcurrencyJSON(w io.Writer, rep ConcurrencyReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
