package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func serveArtifact(t *testing.T, hitRate float64) []byte {
	t.Helper()
	data, err := json.Marshal(ServeReport{Requests: 100, HitRate: hitRate})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func adaptArtifact(t *testing.T, refreeze float64) []byte {
	t.Helper()
	data, err := json.Marshal(AdaptStallReport{ConsideredExtents: 10, RefreezeFraction: refreeze})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCompareHigherIsBetter(t *testing.T) {
	base := serveArtifact(t, 0.90)
	for _, tc := range []struct {
		current   float64
		regressed bool
	}{
		{0.90, false}, // unchanged
		{0.95, false}, // improved
		{0.75, false}, // worse but inside 20%
		{0.70, true},  // past tolerance
	} {
		c, err := CompareArtifact("BENCH_SERVE.json", base, serveArtifact(t, tc.current), 0.20)
		if err != nil {
			t.Fatal(err)
		}
		if c.Regressed != tc.regressed {
			t.Fatalf("current %.2f: regressed=%v, want %v (%+v)", tc.current, c.Regressed, tc.regressed, c)
		}
	}
}

func TestCompareLowerIsBetter(t *testing.T) {
	base := adaptArtifact(t, 0.50)
	// A lower refreeze fraction is an improvement, a higher one regresses.
	c, err := CompareArtifact("BENCH_ADAPT.json", base, adaptArtifact(t, 0.30), 0.20)
	if err != nil || c.Regressed {
		t.Fatalf("improvement flagged: %+v err=%v", c, err)
	}
	if c.Change >= 0 {
		t.Fatalf("improvement should have negative change: %+v", c)
	}
	c, err = CompareArtifact("BENCH_ADAPT.json", base, adaptArtifact(t, 0.65), 0.20)
	if err != nil || !c.Regressed {
		t.Fatalf("30%% worse refreeze not flagged: %+v err=%v", c, err)
	}
}

func TestCompareRejectsUnknownAndMalformed(t *testing.T) {
	if _, err := CompareArtifact("BENCH_NOPE.json", nil, nil, 0.2); err == nil || !strings.Contains(err.Error(), "no headline metric") {
		t.Fatalf("unknown artifact: err = %v", err)
	}
	if _, err := CompareArtifact("BENCH_SERVE.json", []byte("{"), serveArtifact(t, 0.9), 0.2); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	empty, _ := json.Marshal(ServeReport{})
	if _, err := CompareArtifact("BENCH_SERVE.json", empty, serveArtifact(t, 0.9), 0.2); err == nil {
		t.Fatal("baseline with no requests accepted")
	}
}

func TestCompareJoinGeomean(t *testing.T) {
	mk := func(speedups ...float64) []byte {
		rep := JoinKernelReport{}
		for _, s := range speedups {
			rep.Rows = append(rep.Rows, JoinKernelRow{Speedup: s})
		}
		data, _ := json.Marshal(rep)
		return data
	}
	// geomean(2, 8) = 4; geomean(2, 2) = 2 → a 50% regression.
	c, err := CompareArtifact("BENCH_JOIN.json", mk(2, 8), mk(2, 2), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Regressed || c.Baseline != 4 || c.Current != 2 {
		t.Fatalf("geomean comparison = %+v", c)
	}
}

func TestCompareConcurrencyHeadline(t *testing.T) {
	mk := func(rows ...ConcurrencyRow) []byte {
		data, _ := json.Marshal(ConcurrencyReport{Rows: rows})
		return data
	}
	base := mk(
		ConcurrencyRow{Scenario: "read-only", Speedup: 1.0},
		ConcurrencyRow{Scenario: "read-only", Speedup: 2.4},
		ConcurrencyRow{Scenario: "read+adapt", Speedup: 9.9}, // ignored
	)
	c, err := CompareArtifact("BENCH_CONCURRENCY.json", base, base, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Baseline != 2.4 {
		t.Fatalf("headline = %g, want the max read-only speedup 2.4", c.Baseline)
	}
}

func TestCompareDirs(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	write := func(dir, name string, data []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(baseDir, "BENCH_SERVE.json", serveArtifact(t, 0.90))
	write(baseDir, "BENCH_ADAPT.json", adaptArtifact(t, 0.50))
	write(curDir, "BENCH_SERVE.json", serveArtifact(t, 0.60))

	// A baseline without a current artifact is a dropped benchmark: hard error.
	if _, err := CompareDirs(baseDir, curDir, 0.20); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("missing current artifact: err = %v", err)
	}

	write(curDir, "BENCH_ADAPT.json", adaptArtifact(t, 0.45))
	comps, err := CompareDirs(baseDir, curDir, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 || comps[0].Artifact != "BENCH_ADAPT.json" {
		t.Fatalf("comps = %+v", comps)
	}
	bad := Regressions(comps)
	if len(bad) != 1 || bad[0].Artifact != "BENCH_SERVE.json" {
		t.Fatalf("regressions = %+v", bad)
	}

	// An empty baseline directory cannot pass the gate.
	if _, err := CompareDirs(t.TempDir(), curDir, 0.20); err == nil {
		t.Fatal("empty baseline dir accepted")
	}
}

// TestCheckedInBaselinesAreValid guards the real artifacts under
// bench/baselines/: every file must have an extractable headline, so a
// malformed check-in fails here rather than in CI's gate step.
func TestCheckedInBaselinesAreValid(t *testing.T) {
	dir := filepath.Join("..", "..", "bench", "baselines")
	comps, err := CompareDirs(dir, dir, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) < 4 {
		t.Fatalf("only %d baseline artifacts, want the four BENCH_* files", len(comps))
	}
	for _, c := range comps {
		if c.Regressed {
			t.Fatalf("self-comparison regressed: %+v", c)
		}
	}
}

// driftArtifact builds a healthy drift report; mutate overrides fields to
// violate individual gate invariants.
func driftArtifact(t *testing.T, mutate func(*DriftReport)) []byte {
	t.Helper()
	rep := DriftReport{
		ThrashBound: driftThrashBound,
		On: DriftRun{
			Controller: true, Adapts: 1, BRequiredPaths: 4,
			SettledP99Ratio: 0.95, SettledCostRatio: 1.2,
		},
		Off: DriftRun{
			SettledP99Ratio: 1.0, SettledCostRatio: 4.1,
		},
		OffOnCostRatio: 4.1 / 1.2,
	}
	if mutate != nil {
		mutate(&rep)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCompareDriftGateInvariants(t *testing.T) {
	healthy := driftArtifact(t, nil)
	c, err := CompareArtifact("BENCH_DRIFT.json", healthy, healthy, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed || c.Current < 3.4 || c.Current > 3.42 {
		t.Fatalf("healthy drift comparison = %+v", c)
	}

	cases := []struct {
		name   string
		mutate func(*DriftReport)
		want   string
	}{
		{"never adapted", func(r *DriftReport) { r.On.Adapts = 0 }, "never adapted"},
		{"thrashed", func(r *DriftReport) { r.On.Adapts = driftThrashBound + 1 }, "thrashed"},
		{"off adapted", func(r *DriftReport) { r.Off.Adapts = 1 }, "controller-off run reported"},
		{"no B paths", func(r *DriftReport) { r.On.BRequiredPaths = 0 }, "never required"},
		{"off B paths", func(r *DriftReport) { r.Off.BRequiredPaths = 2 }, "controller-off index requires"},
		{"p99 over bar", func(r *DriftReport) { r.On.SettledP99Ratio = 1.3 }, "above the 1.2x bar"},
		{"cost over bar", func(r *DriftReport) { r.On.SettledCostRatio = 1.6 }, "above the 1.5x bar"},
		{"off never hurt", func(r *DriftReport) { r.Off.SettledCostRatio = 1.1 }, "never hurt"},
		{"no ratio", func(r *DriftReport) { r.OffOnCostRatio = 0 }, "no cost ratio"},
	}
	for _, tc := range cases {
		_, err := CompareArtifact("BENCH_DRIFT.json", healthy, driftArtifact(t, tc.mutate), 0.20)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
