package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestShardShape runs a scaled-down sharded-serving experiment and checks
// the acceptance shape: no request errors at any shard count, the mid-run
// single-shard adapt invalidates only that shard's cached partials (so the
// hit rate stays high instead of collapsing by a factor of N), and the
// report's headline fields are populated from the 1- and 4-shard runs.
func TestShardShape(t *testing.T) {
	env := NewEnv(DefaultConfig())
	rep, err := env.Shard("Flix01.xml", []int{1, 4}, 2, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if run.Errors != 0 {
			t.Fatalf("%d shards: %d request errors", run.Shards, run.Errors)
		}
		if run.Invalidated == 0 {
			t.Fatalf("%d shards: the mid-run adapt invalidated nothing", run.Shards)
		}
		if run.HitRate < 0.5 {
			t.Fatalf("%d shards: hit rate %.2f, want >= 0.5", run.Shards, run.HitRate)
		}
		if run.ColdQPS <= 0 || run.SteadyQPS <= 0 {
			t.Fatalf("%d shards: throughput not measured: %+v", run.Shards, run)
		}
		if run.P50 <= 0 || run.P99 < run.P50 {
			t.Fatalf("%d shards: percentiles out of order: p50=%v p99=%v", run.Shards, run.P50, run.P99)
		}
	}
	if rep.HitRate4 != rep.Runs[1].HitRate {
		t.Fatalf("HitRate4 = %v, want the 4-shard run's %v", rep.HitRate4, rep.Runs[1].HitRate)
	}
	if rep.ColdSpeedup4 <= 0 {
		t.Fatalf("ColdSpeedup4 = %v, want a measured ratio", rep.ColdSpeedup4)
	}

	out := RenderShard(rep)
	if !strings.Contains(out, "hit-rate@4") {
		t.Fatalf("render:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteShardJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back ShardReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.HitRate4 != rep.HitRate4 || len(back.Runs) != len(rep.Runs) {
		t.Fatalf("JSON round-trip mismatch: %+v vs %+v", back, rep)
	}
}
