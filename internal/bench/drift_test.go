package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"apex/internal/datagen"
	"apex/internal/workload"
)

func TestDriftFamiliesDisjointAndInterleaved(t *testing.T) {
	ds, err := datagen.LoadDataset("Ged02.xml", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(ds.Graph, 8)
	a, b, err := driftFamilies(gen.QType3(6000), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.paths) != 4 || len(b.paths) != 4 {
		t.Fatalf("family sizes = %d/%d, want 4/4", len(a.paths), len(b.paths))
	}
	seen := map[string]bool{}
	for _, p := range a.paths {
		seen[p] = true
	}
	for _, p := range b.paths {
		if seen[p] {
			t.Fatalf("path %q appears in both families", p)
		}
	}
	if len(a.hot) != 4 || len(b.hot) != 4 {
		t.Fatalf("hot sets = %d/%d, want 4/4", len(a.hot), len(b.hot))
	}
	// Every family needs at least famSize×minVariants distinct variants,
	// and no variant may repeat inside a pool (the cache-eviction argument
	// depends on the pool being distinct queries).
	for _, fam := range []driftFamily{a, b} {
		if len(fam.q3) < 4*6 {
			t.Fatalf("family %s pool has %d variants, want >= 24", fam.name, len(fam.q3))
		}
		uniq := map[string]bool{}
		for _, q := range fam.q3 {
			if uniq[q] {
				t.Fatalf("family %s repeats variant %q", fam.name, q)
			}
			uniq[q] = true
		}
	}
}

func TestDriftFamiliesInsufficientGroups(t *testing.T) {
	ds, err := datagen.LoadDataset("Ged02.xml", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(ds.Graph, 8)
	if _, _, err := driftFamilies(gen.QType3(200), 4, 10_000); err == nil {
		t.Fatal("expected an error when no path group has enough variants")
	}
}

func TestMergePhases(t *testing.T) {
	a := DriftPhaseStats{
		Seconds: 1, Requests: 100, Errors: 1,
		CacheHits: 40, CacheMisses: 60, CostPerEval: 100,
		P50: 1 * time.Millisecond, P99: 8 * time.Millisecond,
	}
	b := DriftPhaseStats{
		Seconds: 2, Requests: 50, Errors: 0,
		CacheHits: 10, CacheMisses: 40, CostPerEval: 200,
		P50: 2 * time.Millisecond, P99: 4 * time.Millisecond,
	}
	m := mergePhases(a, b)
	if m.Requests != 150 || m.Errors != 1 || m.CacheHits != 50 || m.CacheMisses != 100 {
		t.Fatalf("merged counts = %+v", m)
	}
	// Miss-weighted cost: (100·60 + 200·40) / 100 = 140.
	if m.CostPerEval != 140 {
		t.Fatalf("merged cost/eval = %g, want 140", m.CostPerEval)
	}
	if m.HitRate != 50.0/150.0 {
		t.Fatalf("merged hit rate = %g", m.HitRate)
	}
	// Percentiles take the worse window.
	if m.P50 != 2*time.Millisecond || m.P99 != 8*time.Millisecond {
		t.Fatalf("merged percentiles = %v/%v", m.P50, m.P99)
	}
}

// TestDriftExperimentShortEndToEnd runs the full soak at a phase length
// far too short for the controller to debounce and adapt — the point is
// exercising the harness (family carving, replay, phase accounting,
// report serialization), not the adaptation outcome the real experiment
// and its CI gate prove.
func TestDriftExperimentShortEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("replays live traffic for ~2s")
	}
	env := NewEnv(DefaultConfig())
	rep, err := env.Drift("Ged02.xml", 2, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FamilySize != 4 || rep.VariantsA == 0 || rep.VariantsB == 0 {
		t.Fatalf("report families = %+v", rep)
	}
	if rep.MemoryBudget <= 0 {
		t.Fatalf("memory budget = %d", rep.MemoryBudget)
	}
	for _, run := range []DriftRun{rep.On, rep.Off} {
		for _, ph := range []DriftPhaseStats{run.Pre, run.Post, run.Settled} {
			if ph.Requests == 0 {
				t.Fatalf("empty phase in run %+v", run)
			}
			if ph.Errors != 0 {
				t.Fatalf("%d replay errors in run (controller=%v)", ph.Errors, run.Controller)
			}
		}
	}
	if rep.Off.Adapts != 0 || rep.Off.BRequiredPaths != 0 || rep.Off.ControllerState != nil {
		t.Fatalf("controller-off run shows controller activity: %+v", rep.Off)
	}
	if rep.On.ControllerState == nil {
		t.Fatal("controller-on run carries no controller state")
	}

	text := RenderDrift(rep)
	if !strings.Contains(text, "controller on") || !strings.Contains(text, "controller off") {
		t.Fatalf("render missing runs:\n%s", text)
	}
	var buf bytes.Buffer
	if err := WriteDriftJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back DriftReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Dataset != rep.Dataset || back.On.Pre.Requests != rep.On.Pre.Requests {
		t.Fatalf("JSON round-trip diverged: %+v vs %+v", back, rep)
	}
}
