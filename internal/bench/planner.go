package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"apex/internal/query"
)

// The planner ablation isolates the cost-based join planner: the same
// adapted index and query batches with the planner on (anchor selection,
// direction, per-stage kernels, plan and leg caches, shared prefix
// frontiers) and off (the fixed left-to-right merge join with uncached leg
// enumeration). The logical cost model is planner-independent by
// construction — the report hard-errors if results or cost totals diverge —
// so the comparison rests on wall time, with the steady-state cache hit rate
// as the serve-replay headline.

// PlannerDatasets are the deep/skewed presets the planner targets: the
// largest file of each corpus, where join paths are deep enough for anchor
// and direction choices to matter.
var PlannerDatasets = []string{"shakes_all.xml", "Flix03.xml", "Ged03.xml"}

// PlannerCell is one (planner setting) measurement within a workload.
type PlannerCell struct {
	Planner    bool          `json:"planner"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	QPS        float64       `json:"qps"`
	CostTotal  int64         `json:"cost_total"`
	Results    int64         `json:"results"`
	AllocsPerQ float64       `json:"allocs_per_query"`
}

// PlannerRow is one (dataset, workload) comparison.
type PlannerRow struct {
	Dataset  string      `json:"dataset"`
	Workload string      `json:"workload"` // "deep-join" or "descendant"
	Queries  int         `json:"queries"`
	On       PlannerCell `json:"planner_on"`
	Off      PlannerCell `json:"planner_off"`
	// Speedup is off elapsed over on elapsed (>1 means the planner wins).
	Speedup float64 `json:"speedup"`
	// Agreed records identical result volumes and logical cost totals.
	Agreed bool `json:"agreed"`
	// CacheHitRate is the plan+leg cache hit rate of the measured (warm)
	// planner-on pass — the steady-state serve-replay number.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Decision mix of the planner-on pass (cold and warm).
	Forward   int64 `json:"forward_plans"`
	Backward  int64 `json:"backward_plans"`
	Fallbacks int64 `json:"fallbacks"`
}

// PlannerReport is the preset sweep plus its headline aggregates.
type PlannerReport struct {
	Scale float64      `json:"scale"`
	Rows  []PlannerRow `json:"rows"`
	// GeomeanSpeedup aggregates the per-row speedups.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
	// CacheHitRate is the minimum steady-state hit rate across rows.
	CacheHitRate float64 `json:"cache_hit_rate"`
	Agreed       bool    `json:"agreed"`
}

// Planner runs the planner ablation over the named datasets (the deep/skewed
// presets when names is empty).
func (e *Env) Planner(names []string) (PlannerReport, error) {
	if len(names) == 0 {
		names = PlannerDatasets
	}
	rep := PlannerReport{Scale: e.cfg.Scale, Agreed: true, CacheHitRate: 1}
	logSpeedups, rows := 0.0, 0
	for _, name := range names {
		s, err := e.site(name)
		if err != nil {
			return rep, err
		}
		idx := s.buildAPEX(e.cfg.FixedMinSup)
		// deep-join: the QTYPE1 population restricted to real joins — length
		// >= 3 and not fully covered by the hash tree — where the planner
		// makes per-position decisions. Covered queries take the fast path
		// under both settings and would only dilute the comparison.
		var deep []query.Query
		for _, q := range s.q1 {
			if len(q.Path) < 3 {
				continue
			}
			if _, covered := idx.LookupAll(q.Path); !covered.Equal(q.Path) {
				deep = append(deep, q)
			}
		}
		for _, wl := range []struct {
			name string
			qs   []query.Query
		}{
			{"deep-join", deep},
			{"descendant", s.q2},
		} {
			if len(wl.qs) == 0 {
				continue
			}
			row := PlannerRow{Dataset: name, Workload: wl.name, Queries: len(wl.qs)}
			for _, planner := range []bool{true, false} {
				ev := query.NewAPEXEvaluator(idx, s.dt)
				ev.SetParallelism(1)
				ev.DisablePlanner = !planner
				cell, warmStats, err := runPlannerCell(ev, wl.qs)
				if err != nil {
					return rep, err
				}
				cell.Planner = planner
				if planner {
					row.On = cell
					row.CacheHitRate = warmStats.HitRate()
					full := ev.PlanStats()
					row.Forward, row.Backward, row.Fallbacks = full.Forward, full.Backward, full.Fallbacks
				} else {
					row.Off = cell
				}
			}
			if row.On.Elapsed > 0 {
				row.Speedup = float64(row.Off.Elapsed) / float64(row.On.Elapsed)
			}
			row.Agreed = row.On.Results == row.Off.Results &&
				row.On.CostTotal == row.Off.CostTotal
			if !row.Agreed {
				return rep, fmt.Errorf("bench: planner settings disagree on %s/%s: on(results=%d cost=%d) off(results=%d cost=%d)",
					name, wl.name, row.On.Results, row.On.CostTotal, row.Off.Results, row.Off.CostTotal)
			}
			logSpeedups += math.Log(row.Speedup)
			rows++
			if row.CacheHitRate < rep.CacheHitRate {
				rep.CacheHitRate = row.CacheHitRate
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	if rows > 0 {
		rep.GeomeanSpeedup = math.Exp(logSpeedups / float64(rows))
	}
	return rep, nil
}

// plannerPasses is how many measured passes each cell runs; the fastest is
// reported. Minimum-of-N is the standard defense against scheduler and GC
// interference — the comparison gates CI, so stability beats averaging.
const plannerPasses = 5

// runPlannerCell times one setting over the query batch: one cold warm-up
// pass (filling the plan and leg caches under planner-on), then the fastest
// of plannerPasses steady-state passes. The returned PlanStats cover one
// measured pass — the warm-pass delta is the steady-state cache behavior.
func runPlannerCell(ev *query.APEXEvaluator, qs []query.Query) (PlannerCell, query.PlanStats, error) {
	pass := func() (int64, error) {
		var results int64
		for _, q := range qs {
			res, err := ev.Evaluate(q)
			if err != nil {
				return 0, err
			}
			results += int64(len(res))
		}
		return results, nil
	}
	if _, err := pass(); err != nil { // warm-up: fills caches and pools
		return PlannerCell{}, query.PlanStats{}, err
	}
	cell := PlannerCell{}
	var delta query.PlanStats
	for i := 0; i < plannerPasses; i++ {
		ev.ResetCost()
		before := ev.PlanStats()
		var msBefore, msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		results, err := pass()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		if err != nil {
			return PlannerCell{}, query.PlanStats{}, err
		}
		if i > 0 && elapsed >= cell.Elapsed {
			continue
		}
		after := ev.PlanStats()
		delta = query.PlanStats{
			PlanHits:   after.PlanHits - before.PlanHits,
			PlanMisses: after.PlanMisses - before.PlanMisses,
			LegHits:    after.LegHits - before.LegHits,
			LegMisses:  after.LegMisses - before.LegMisses,
		}
		n := float64(len(qs))
		cell = PlannerCell{
			Elapsed:    elapsed,
			QPS:        n / elapsed.Seconds(),
			CostTotal:  ev.Cost().Total(),
			Results:    results,
			AllocsPerQ: float64(msAfter.Mallocs-msBefore.Mallocs) / n,
		}
	}
	return cell, delta, nil
}

// RenderPlanner prints the sweep as a table.
func RenderPlanner(rep PlannerReport) string {
	var b []byte
	b = fmt.Appendf(b, "Planner ablation (scale=%g)\n", rep.Scale)
	b = fmt.Appendf(b, "%-16s %-10s %7s %12s %12s %9s %8s %5s %5s %5s\n",
		"dataset", "workload", "queries", "on", "off", "speedup", "hit-rate", "fwd", "bwd", "fall")
	for _, r := range rep.Rows {
		b = fmt.Appendf(b, "%-16s %-10s %7d %12v %12v %8.2fx %7.1f%% %5d %5d %5d\n",
			r.Dataset, r.Workload, r.Queries,
			r.On.Elapsed.Round(time.Microsecond), r.Off.Elapsed.Round(time.Microsecond),
			r.Speedup, 100*r.CacheHitRate, r.Forward, r.Backward, r.Fallbacks)
	}
	b = fmt.Appendf(b, "geomean speedup %.2fx, min steady-state hit rate %.1f%%, agreed=%v\n",
		rep.GeomeanSpeedup, 100*rep.CacheHitRate, rep.Agreed)
	return string(b)
}

// WritePlannerJSON records the report (the CI benchmark job uploads it as
// BENCH_PLANNER.json).
func WritePlannerJSON(w io.Writer, rep PlannerReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
