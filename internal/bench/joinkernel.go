package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"apex/internal/datagen"
	"apex/internal/query"
)

// The join-kernel ablation isolates the QTYPE1 execution kernel: the
// sort-merge join over frozen columnar extents against the hash-join
// fallback (DisableMergeJoin), on the same adapted index and queries. Each
// dataset runs two workloads — the full QTYPE1 population (most queries take
// the hash-tree fast path) and a join-heavy variant with the fast path
// disabled, where the kernel does all the work. The logical cost counters
// are kernel-independent by design, so the report asserts they match and the
// comparison rests on wall time and allocations.

// JoinKernelCell is one (kernel) measurement within a workload.
type JoinKernelCell struct {
	Kernel     string        `json:"kernel"` // "merge" or "hash"
	Elapsed    time.Duration `json:"elapsed_ns"`
	QPS        float64       `json:"qps"`
	CostTotal  int64         `json:"cost_total"`
	Results    int64         `json:"results"`
	AllocsPerQ float64       `json:"allocs_per_query"`
	BytesPerQ  float64       `json:"bytes_per_query"`
}

// JoinKernelRow is one (dataset, workload) comparison.
type JoinKernelRow struct {
	Dataset  string         `json:"dataset"`
	Workload string         `json:"workload"` // "qtype1" or "join-heavy"
	Queries  int            `json:"queries"`
	Merge    JoinKernelCell `json:"merge"`
	Hash     JoinKernelCell `json:"hash"`
	// Speedup is hash elapsed over merge elapsed (>1 means merge wins).
	Speedup float64 `json:"speedup"`
	// Agreed records that both kernels returned the same result volume and
	// identical logical cost totals.
	Agreed bool `json:"agreed"`
}

// JoinKernelReport is the full nine-dataset sweep.
type JoinKernelReport struct {
	Scale   float64         `json:"scale"`
	Queries int             `json:"queries_per_dataset"`
	Rows    []JoinKernelRow `json:"rows"`
}

// JoinKernel runs the kernel ablation over the named datasets (all seed
// datasets when names is empty).
func (e *Env) JoinKernel(names []string) (JoinKernelReport, error) {
	if len(names) == 0 {
		names = datagen.DatasetNames()
	}
	rep := JoinKernelReport{Scale: e.cfg.Scale, Queries: e.cfg.NumQ1}
	for _, name := range names {
		s, err := e.site(name)
		if err != nil {
			return rep, err
		}
		idx := s.buildAPEX(e.cfg.FixedMinSup)
		for _, wl := range []string{"qtype1", "join-heavy"} {
			row := JoinKernelRow{Dataset: name, Workload: wl, Queries: len(s.q1)}
			for _, kernel := range []string{"merge", "hash"} {
				// Parallelism 1 keeps the allocation deltas attributable to
				// the measured goroutine.
				ev := query.NewAPEXEvaluator(idx, s.dt)
				ev.SetParallelism(1)
				ev.DisableFastPath = wl == "join-heavy"
				ev.DisableMergeJoin = kernel == "hash"
				cell, err := runKernelCell(ev, s.q1)
				if err != nil {
					return rep, err
				}
				cell.Kernel = kernel
				if kernel == "merge" {
					row.Merge = cell
				} else {
					row.Hash = cell
				}
			}
			if row.Merge.Elapsed > 0 {
				row.Speedup = float64(row.Hash.Elapsed) / float64(row.Merge.Elapsed)
			}
			row.Agreed = row.Merge.Results == row.Hash.Results &&
				row.Merge.CostTotal == row.Hash.CostTotal
			if !row.Agreed {
				return rep, fmt.Errorf("bench: join kernels disagree on %s/%s: merge(results=%d cost=%d) hash(results=%d cost=%d)",
					name, wl, row.Merge.Results, row.Merge.CostTotal, row.Hash.Results, row.Hash.CostTotal)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// runKernelCell times one kernel over the query batch, measuring allocations
// via the runtime's malloc counters (the batch runs once warm before the
// measured pass so pooled scratch is in steady state).
func runKernelCell(ev *query.APEXEvaluator, qs []query.Query) (JoinKernelCell, error) {
	pass := func() (int64, error) {
		var results int64
		for _, q := range qs {
			res, err := ev.Evaluate(q)
			if err != nil {
				return 0, err
			}
			results += int64(len(res))
		}
		return results, nil
	}
	if _, err := pass(); err != nil { // warm-up
		return JoinKernelCell{}, err
	}
	ev.ResetCost()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	results, err := pass()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return JoinKernelCell{}, err
	}
	n := float64(len(qs))
	return JoinKernelCell{
		Elapsed:    elapsed,
		QPS:        n / elapsed.Seconds(),
		CostTotal:  ev.Cost().Total(),
		Results:    results,
		AllocsPerQ: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerQ:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

// RenderJoinKernel prints the sweep as a table.
func RenderJoinKernel(rep JoinKernelReport) string {
	var b []byte
	b = fmt.Appendf(b, "Join-kernel ablation (scale=%g, %d QTYPE1 queries per dataset)\n",
		rep.Scale, rep.Queries)
	b = fmt.Appendf(b, "%-16s %-10s %12s %12s %9s %11s %11s %7s\n",
		"dataset", "workload", "merge", "hash", "speedup", "allocs/q(m)", "allocs/q(h)", "agreed")
	for _, r := range rep.Rows {
		b = fmt.Appendf(b, "%-16s %-10s %12v %12v %8.2fx %11.0f %11.0f %7v\n",
			r.Dataset, r.Workload,
			r.Merge.Elapsed.Round(time.Microsecond), r.Hash.Elapsed.Round(time.Microsecond),
			r.Speedup, r.Merge.AllocsPerQ, r.Hash.AllocsPerQ, r.Agreed)
	}
	return string(b)
}

// WriteJoinKernelJSON records the report (the CI benchmark job uploads it as
// BENCH_JOIN.json).
func WriteJoinKernelJSON(w io.Writer, rep JoinKernelReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
