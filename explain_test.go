package apex

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"apex/internal/query"
)

// TestExplainMatchesQueryCost is the acceptance gate for the trace layer:
// Explain's per-stage counters sum to the trace total, and that total is
// exactly what QueryCost reports for the same (single) query.
func TestExplainMatchesQueryCost(t *testing.T) {
	for _, q := range []string{
		"//actor/name",
		"//movie/@director=>director/name",
		"//movie//title",
		`//movie/title[text()="Waterworld"]`,
		"//MovieDB//movie//title",
	} {
		ix := openMovie(t)
		res, tr, err := ix.Explain(q)
		if err != nil {
			t.Fatalf("Explain(%s): %v", q, err)
		}
		if sum := tr.StageSum(); sum != tr.Total {
			t.Errorf("%s: stage sum %+v != trace total %+v", q, sum, tr.Total)
		}
		if got, want := tr.Total.String(), ix.QueryCost(); got != want {
			t.Errorf("%s: trace total %q != QueryCost %q", q, got, want)
		}
		if tr.Results != res.Len() {
			t.Errorf("%s: trace results %d != %d", q, tr.Results, res.Len())
		}
		// Explain returns the same answer as Query.
		plain, err := openMovie(t).Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Nodes, plain.Nodes) {
			t.Errorf("%s: Explain result differs from Query", q)
		}
		if !strings.Contains(tr.Text(), "EXPLAIN "+q) {
			t.Errorf("%s: Text render missing header:\n%s", q, tr.Text())
		}
	}
}

// TestExplainLogsWorkload: traced path queries feed Adapt just like Query.
func TestExplainLogsWorkload(t *testing.T) {
	ix := openMovie(t)
	if _, _, err := ix.Explain("//actor/name"); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().LoggedQueries; got != 1 {
		t.Fatalf("logged queries = %d, want 1", got)
	}
	if err := ix.Adapt(0.5); err != nil {
		t.Fatal(err)
	}
}

// TestSaveLoadKeepsOptions: the envelope persists the Options an index was
// opened with, so a reloaded index resolves references and adapts exactly
// like the original (regression: Load used to rebuild the evaluator with
// zero-value Options, dropping Parallelism and the reference attributes).
func TestSaveLoadKeepsOptions(t *testing.T) {
	ix, err := Open(strings.NewReader(movieDoc), &Options{
		IDREFSAttrs:     []string{"actor", "movie", "director"},
		MinSup:          0.25,
		Parallelism:     2,
		AllowLegacyDump: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.opts, ix.opts) {
		t.Fatalf("options diverge after reload: %+v vs %+v", re.opts, ix.opts)
	}
	// The restored MinSup drives Adapt's default threshold; the restored
	// reference attributes flow into Insert's fragment parsing.
	if _, err := re.Query("//movie/@director=>director/name"); err != nil {
		t.Fatal(err)
	}
	if err := re.Adapt(0); err != nil {
		t.Fatalf("Adapt with restored MinSup default: %v", err)
	}
	if err := re.Insert("/", `<movie id="m3" director="d1"><title>New</title></movie>`); err != nil {
		t.Fatal(err)
	}
	res, err := re.Query("//movie/@director=>director/name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("post-insert deref = %+v (reference attributes lost?)", res.Nodes)
	}
}

// TestLoadRejectsGarbage: loading a non-index stream fails cleanly.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not an index")); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

// TestLoadFromPlainReader: Load must work from a reader that is not an
// io.ByteReader (the envelope and payload decoders share one buffered
// reader; over-reading would corrupt the chained gob streams).
func TestLoadFromPlainReader(t *testing.T) {
	ix := openMovie(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Load(struct{ io.Reader }{&buf})
	if err != nil {
		t.Fatal(err)
	}
	if re.Stats().Nodes != ix.Stats().Nodes {
		t.Fatal("reload through plain reader diverged")
	}
}

// TestEvaluatorBridge: the in-module bridge exposes the traced evaluator the
// CLIs use.
func TestEvaluatorBridge(t *testing.T) {
	ix := openMovie(t)
	q, err := query.Parse("//actor/name")
	if err != nil {
		t.Fatal(err)
	}
	nids, tr, err := ix.Evaluator().EvaluateTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(nids) != 2 || tr.StageSum() != tr.Total {
		t.Fatalf("bridge trace: %d results, %+v", len(nids), tr)
	}
	if ix.Graph() == nil {
		t.Fatal("Graph bridge returned nil")
	}
}
