package apex_test

import (
	"fmt"
	"log"
	"strings"

	apex "apex"
)

const exampleDoc = `<catalog>
  <book id="b1" cites="b2"><title>Path Indexing</title><year>2002</year></book>
  <book id="b2"><title>Semistructured Data</title><year>1999</year></book>
</catalog>`

func open() *apex.Index {
	ix, err := apex.Open(strings.NewReader(exampleDoc), &apex.Options{
		IDREFAttrs: []string{"cites"},
	})
	if err != nil {
		log.Fatal(err)
	}
	return ix
}

// The basic flow: open a document, ask a partial-matching path query.
func Example() {
	ix := open()
	res, err := ix.Query("//book/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Values())
	// Output: [Path Indexing Semistructured Data]
}

// Dereferencing ID/IDREF attributes follows graph edges.
func ExampleIndex_Query_dereference() {
	ix := open()
	res, err := ix.Query("//book/@cites=>book/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Values())
	// Output: [Semistructured Data]
}

// Value predicates validate candidates against the data table.
func ExampleIndex_Query_value() {
	ix := open()
	res, err := ix.Query(`//book/year[text()="2002"]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Len())
	// Output: 1
}

// Adapt mines the logged queries and reshapes the index incrementally.
func ExampleIndex_Adapt() {
	ix := open()
	for i := 0; i < 4; i++ {
		if _, err := ix.Query("//book/title"); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Adapt(0.5); err != nil {
		log.Fatal(err)
	}
	for _, p := range ix.Stats().RequiredPaths {
		if strings.Contains(p, ".") {
			fmt.Println(p)
		}
	}
	// Output: book.title
}

// Insert grows the document; the index follows without re-mining.
func ExampleIndex_Insert() {
	ix := open()
	// "/" addresses the document root, which no label path can reach.
	err := ix.Insert("/", `<book id="b3"><title>New Arrival</title></book>`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ix.Query("//book/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Len())
	// Output: 3
}
