#!/usr/bin/env sh
# The single source of truth for the repo's fuzz targets. Every consumer —
# `make fuzz`, `make fuzz-smoke`, the CI fuzz job, and the nightly workflow —
# runs the targets through this script, so adding a target here adds it
# everywhere at once (targets used to be duplicated per consumer, and the
# copies drifted: FuzzEdgeSetModel was silently missing from the smoke runs).
#
# Usage: scripts/fuzz.sh <fuzztime, e.g. 10s or 5m>
set -eu

FUZZTIME="${1:?usage: scripts/fuzz.sh <fuzztime, e.g. 10s>}"

fuzz_one() {
	target="$1"
	pkg="$2"
	echo "==> fuzzing ${target} in ${pkg} for ${FUZZTIME}"
	go test -run '^$' -fuzz "^${target}\$" -fuzztime "${FUZZTIME}" "${pkg}"
}

fuzz_one FuzzParse ./internal/query/
fuzz_one FuzzBuild ./internal/xmlgraph/
fuzz_one FuzzEdgeSetModel ./internal/core/
fuzz_one FuzzBlockCodec ./internal/extentblock/
fuzz_one FuzzWALReplay ./internal/storage/
fuzz_one FuzzSegmentDecode ./internal/storage/
fuzz_one FuzzShardMerge ./internal/shard/
