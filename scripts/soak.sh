#!/usr/bin/env bash
# Workload-shift soak: the drift experiment at a long horizon. The replay
# serves family A for one full phase, shifts every client to a disjoint
# family B, and holds the post-shift load just as long — controller on,
# then controller off — so the run proves the background controller
# detects the drift, re-adapts once, and keeps the settled cost per
# evaluated query flat while the controller-off daemon degrades.
#
# Usage: scripts/soak.sh [phase] [outdir]
#   phase   duration of each workload phase (default 5m; the nightly job
#           uses this for a 10+ minute per-run horizon)
#   outdir  where BENCH_DRIFT.json and the console log land
#
# The same invariants the per-PR gate enforces (adapt count within the
# thrash bound, shifted-family paths required, bounded settled cost) are
# re-checked against the checked-in baseline at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

phase="${1:-5m}"
outdir="${2:-soak-artifacts}"
mkdir -p "$outdir"

go run ./cmd/apexbench -experiments drift -drift-phase "$phase" \
	-drift-json "$outdir/BENCH_DRIFT.json" | tee "$outdir/drift-soak.txt"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cp bench/baselines/BENCH_DRIFT.json "$tmp/"
go run ./cmd/benchcheck -baselines "$tmp" -current "$outdir"
