// Command apexd serves an APEX index over HTTP: POST /query and /explain on
// the hot path (behind a snapshot-keyed result cache and bounded admission),
// POST /adapt to restructure the index online, GET /stats and /metrics for
// observability, and /debug/pprof. SIGINT/SIGTERM drains gracefully.
//
// Usage:
//
//	apexd -in doc.xml [-addr 127.0.0.1:8080]
//	apexd -index saved.apex
//	apexd -dataset shakes_11.xml [-scale 0.05]
//	apexd -in doc.xml -shards 4 [-shard-timeout 2s]
//	apexd -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Exactly one of -index, -in, -dataset selects the serving index; see
// -help for cache, admission, timeout, and access-log knobs.
//
// -shards N partitions the document into N shards served by one
// scatter-gather router in this process (per-shard result caches keyed by a
// generation vector; a single shard's adapt invalidates only its own cache
// entries). -backends routes over already-running apexd daemons instead;
// that mode serves reads and adapts only.
package main

import (
	"fmt"
	"os"

	"apex/internal/cli"
)

func main() {
	if err := cli.RunServe(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apexd:", err)
		os.Exit(1)
	}
}
