// Command apexbench regenerates the APEX paper's experiment tables and
// figures (Table 1, Table 2, Figures 13–15) plus this reproduction's
// ablations and the access-support-relations extension, over synthetic
// equivalents of the paper's data sets.
//
// Usage:
//
//	apexbench [-scale 0.05] [-q1 1000] [-q2 100] [-q3 200] [-seed 1]
//	          [-experiments table1,table2,fig13,fig14,fig15,ablations,asr]
//	          [-paper]
//
// -paper runs the full-size protocol (5000/500/1000 queries at scale 1.0);
// expect many-minute runtimes, as the original experiments had.
package main

import (
	"fmt"
	"os"

	"apex/internal/cli"
)

func main() {
	if err := cli.RunBench(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apexbench:", err)
		os.Exit(1)
	}
}
