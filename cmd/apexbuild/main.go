// Command apexbuild builds an APEX index from an XML document, optionally
// adapts it to a query workload, prints the index statistics, and saves the
// index for apexquery.
//
// Usage:
//
//	apexbuild -in data.xml -out data.apex \
//	          [-idref director,movie] [-idrefs actor,chil] \
//	          [-workload data.xml.q1] [-minsup 0.005] \
//	          [-compare]   # also build SDG/1-index/2-index/Fabric sizes
package main

import (
	"fmt"
	"os"

	"apex/internal/cli"
)

func main() {
	if err := cli.RunBuild(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apexbuild:", err)
		os.Exit(1)
	}
}
