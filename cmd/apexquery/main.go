// Command apexquery evaluates queries against a saved APEX index.
//
// Usage:
//
//	apexquery -index data.apex -q "//actor/name"
//	apexquery -index data.apex -f queries.q1 [-quiet] [-cost]
//	apexquery -xml data.xml -engine sdg -q "//actor/name"   # ad hoc engines
//
// With -xml, the document is indexed on the fly by the chosen engine
// (apex, apex0, sdg, 1index, 2index; -workload adapts the apex engine).
// Results print one node per line as "nid tag value". With -cost, the
// accumulated logical cost counters are printed after the batch.
package main

import (
	"fmt"
	"os"

	"apex/internal/cli"
)

func main() {
	if err := cli.RunQuery(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apexquery:", err)
		os.Exit(1)
	}
}
