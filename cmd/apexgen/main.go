// Command apexgen generates the paper's synthetic data sets and query
// populations to files.
//
// Usage:
//
//	apexgen -dataset Ged02.xml -scale 0.1 -out /tmp/data \
//	        [-q1 1000 -q2 100 -q3 200 -seed 1]
//	apexgen -list
//
// It writes <out>/<dataset> (the XML document) plus three query files
// (<dataset>.q1/.q2/.q3, one query per line) and prints the Table 1 row.
package main

import (
	"fmt"
	"os"

	"apex/internal/cli"
)

func main() {
	if err := cli.RunGen(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apexgen:", err)
		os.Exit(1)
	}
}
