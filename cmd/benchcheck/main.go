// Command benchcheck is the benchmark regression gate: it compares freshly
// generated BENCH_*.json artifacts against the baselines checked in under
// bench/baselines/ and exits non-zero when an artifact's headline metric
// regressed past the tolerance (default 20%). Headline metrics are ratios
// and fractions (speedups, hit rates), not absolute wall times, so the
// baselines transfer across machines.
//
// Usage:
//
//	benchcheck [-baselines bench/baselines] [-current .] [-tolerance 0.20]
package main

import (
	"fmt"
	"os"

	"apex/internal/cli"
)

func main() {
	if err := cli.RunBenchCheck(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
