// Package apex is a workload-adaptive path index for XML data — a Go
// implementation of APEX (Min, Chung, Shim; ACM SIGMOD 2002).
//
// APEX summarizes an XML document (or document graph, via ID/IDREF
// attributes) into two coupled structures: a summary graph whose nodes
// carry extents (the edges reachable by a required label path), and a hash
// tree mapping label-path suffixes to summary nodes in reverse label order.
// It always answers any label-path query from the index alone — every
// label path of length two is indexed — and additionally keeps the longer
// paths that the observed query workload uses frequently, so partial
// matching queries (the //a/b/c kind) resolve in a hash lookup instead of
// an index traversal. The index adapts incrementally as the workload
// drifts.
//
// Basic use:
//
//	ix, err := apex.Open(xmlFile, nil)
//	res, err := ix.Query("//actor/name")
//	...
//	err = ix.Adapt(0.005) // mine the logged queries, reshape the index
//
// The three supported query shapes follow the paper's experiments:
// partial-matching paths ("//act/scene/line", with "=>" dereferencing
// ID/IDREF attributes), descendant pairs ("//act//line"), and value
// queries ("//title[text()=\"Hamlet\"]").
package apex

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"apex/internal/core"
	"apex/internal/metrics"
	"apex/internal/query"
	"apex/internal/storage"
	"apex/internal/xmlgraph"
)

// Options configures Open.
type Options struct {
	// IDAttrs names the attributes that declare element identifiers
	// (default: "id").
	IDAttrs []string
	// IDREFAttrs and IDREFSAttrs name reference attributes; they turn the
	// document into a graph exactly as the paper's Figure 1 does.
	IDREFAttrs  []string
	IDREFSAttrs []string
	// MinSup is the minimum support used by Adapt when called with no
	// explicit value (default 0.005, the paper's sweet spot).
	MinSup float64
	// DisableQueryLog turns off the built-in workload log (Query calls are
	// then not recorded for Adapt).
	DisableQueryLog bool
	// MaxWorkloadLog bounds the workload log. When the log is full, the
	// oldest entries are evicted first (recent queries are what the next
	// Adapt should mine anyway); evictions are counted on the
	// "apex.workload_log_evicted_total" metric. 0 applies a generous default
	// (see defaultMaxWorkloadLog); a negative value removes the bound.
	MaxWorkloadLog int
	// Parallelism bounds the worker pool the query processor uses to fan
	// out extent scans, join probes, and value validations inside a single
	// query, and equally the goroutines a maintenance pass (build, Adapt,
	// Insert, Delete) fans its data-graph scans and extent freezing out to
	// (0 = GOMAXPROCS, 1 = fully serial). The query pool is shared by all
	// concurrent queries on the index; maintenance parallelism never changes
	// the built structure — parallel builds are bit-identical to serial ones.
	Parallelism int
	// AllowLegacyDump re-enables the deprecated monolithic Save path.
	// Persist/RecoverDir (manifest + WAL + segment files) is the supported
	// way to put an index on disk; Save remains for one release behind this
	// flag so existing dump-based tooling can migrate. Load still reads old
	// dumps unconditionally — they are the migration input.
	AllowLegacyDump bool
	// NoSync disables the per-commit WAL fsync on a durable index. Writes
	// stay ordered and CRC-framed, but a crash may lose the buffered tail;
	// a throughput knob for bulk loads, never a correctness one.
	NoSync bool
	// CompressExtents publishes frozen extents as block-compressed
	// delta/bit-packed columns instead of flat sorted slices: ~3–5× less
	// extent memory (see the README's "Memory footprint" section) for a
	// small join-latency cost, with identical query results and logical
	// costs. The setting travels with the index — Save/Persist record it,
	// and recovery loads segments straight into the recorded form.
	CompressExtents bool
}

func (o *Options) minSup() float64 {
	if o == nil || o.MinSup <= 0 {
		return 0.005
	}
	return o.MinSup
}

// defaultMaxWorkloadLog is the workload-log bound when Options.MaxWorkloadLog
// is zero: one million logged paths, far beyond what one Adapt round needs,
// but a hard stop against unbounded growth on an index that serves queries
// for a long time without ever adapting.
const defaultMaxWorkloadLog = 1 << 20

// maxWorkloadLog resolves the configured log bound: 0 means unbounded.
func (o *Options) maxWorkloadLog() int {
	switch {
	case o == nil || o.MaxWorkloadLog == 0:
		return defaultMaxWorkloadLog
	case o.MaxWorkloadLog < 0:
		return 0
	default:
		return o.MaxWorkloadLog
	}
}

// buildWorkers resolves Options.Parallelism to the maintenance fan-out bound.
func (o *Options) buildWorkers() int {
	if o == nil || o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// mWorkloadEvicted counts workload-log entries dropped by the
// MaxWorkloadLog bound (oldest first).
var mWorkloadEvicted = metrics.Default.Counter("apex.workload_log_evicted_total")

// Index is an APEX index over one document, together with its data table
// and query processor. An Index is safe for arbitrary concurrent use:
// queries share a read lock and run fully in parallel, and maintenance
// (Adapt, AdaptTo, Insert, Delete) is off the critical path — it clones the
// published index, rebuilds the clone without holding the index lock, and
// swaps the finished structure in under a briefly-held write lock. A reader
// is therefore never stalled for longer than a pointer swap, and it always
// observes either the complete old index or the complete new one, never a
// blend. See README.md ("Concurrency model" and "The write path") for the
// exact guarantees.
type Index struct {
	// mu gates the published state below it: Query, Stats, Save, and the
	// cost accessors take the read side; publish takes the write side only
	// for the swap. Published structures are immutable — maintenance never
	// mutates them in place — so holding the read side is enough to use them
	// for arbitrarily long.
	mu   sync.RWMutex
	idx  *core.APEX
	dt   *storage.DataTable
	eval *query.APEXEvaluator

	// gen is the published-snapshot generation: 0 for the freshly built (or
	// loaded) index, bumped by every publication. Because published
	// structures are immutable, the generation is a complete identity for
	// the serving state — two reads seeing the same generation saw the very
	// same index, extents, and data table, which is what lets a result cache
	// key on it without any coherence protocol (see QueryGen).
	gen atomic.Uint64

	opts Options

	// maintMu serializes maintenance passes: one shadow rebuild at a time.
	// Readers never take it, so a long rebuild does not block queries.
	maintMu sync.Mutex

	// logMu guards the workload log separately: Query appends to it while
	// holding only the read side of mu, so concurrent readers need their
	// own serialization point for the log.
	logMu    sync.Mutex
	workload []xmlgraph.LabelPath

	// shadowHook, when non-nil, is called at the stages of a shadow
	// maintenance pass ("rebuild" after cloning, "publish" before the swap).
	// Test instrumentation only; set it before any concurrent use.
	shadowHook func(stage string)

	// dur is the persistence attachment (see durable.go): nil for a purely
	// in-memory index, set once by Persist or RecoverDir. Write paths append
	// to its WAL before publishing.
	dur *durableState
}

// Open parses an XML document and builds the initial index APEX⁰.
func Open(r io.Reader, opts *Options) (*Index, error) {
	if opts == nil {
		opts = &Options{}
	}
	g, err := xmlgraph.Build(r, &xmlgraph.BuildOptions{
		IDAttrs:     opts.IDAttrs,
		IDREFAttrs:  opts.IDREFAttrs,
		IDREFSAttrs: opts.IDREFSAttrs,
	})
	if err != nil {
		return nil, err
	}
	return fromGraph(g, *opts)
}

// OpenFile is Open over a file path.
func OpenFile(path string, opts *Options) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Open(f, opts)
}

// FromGraph builds the initial index over an already-parsed document graph.
// It is the in-module bridge for tools and benchmarks that construct graphs
// directly (the type lives in an internal package, so callers outside this
// module use Open instead).
func FromGraph(g *xmlgraph.Graph, opts *Options) (*Index, error) {
	if opts == nil {
		opts = &Options{}
	}
	return fromGraph(g, *opts)
}

func fromGraph(g *xmlgraph.Graph, opts Options) (*Index, error) {
	dt, err := storage.BuildDataTable(g, 0, 64)
	if err != nil {
		return nil, err
	}
	idx := core.BuildAPEX0Opts(g, opts.buildWorkers(), opts.CompressExtents)
	return &Index{
		idx:  idx,
		dt:   dt,
		eval: newEvaluator(idx, dt, opts),
		opts: opts,
	}, nil
}

// newEvaluator wires a query processor with the configured parallelism.
func newEvaluator(idx *core.APEX, dt *storage.DataTable, opts Options) *query.APEXEvaluator {
	ev := query.NewAPEXEvaluator(idx, dt)
	if opts.Parallelism != 0 {
		ev.SetParallelism(opts.Parallelism)
	}
	return ev
}

// FromCore wraps an already-built core index (the in-module bridge for the
// CLIs, which assemble indexes with explicit workloads before saving them).
func FromCore(idx *core.APEX, opts *Options) (*Index, error) {
	if opts == nil {
		opts = &Options{}
	}
	dt, err := storage.BuildDataTable(idx.Graph(), 0, 64)
	if err != nil {
		return nil, err
	}
	idx.SetWorkers(opts.buildWorkers())
	applyExtentForm(idx, *opts)
	return &Index{idx: idx, dt: dt, eval: newEvaluator(idx, dt, *opts), opts: *opts}, nil
}

// applyExtentForm republishes an already-built core index's extents when its
// frozen form disagrees with the options (a flat-built index opened with
// CompressExtents, or vice versa). A matching form costs one no-op freeze
// consideration, not a republication.
func applyExtentForm(idx *core.APEX, opts Options) {
	if idx.CompressExtents() != opts.CompressExtents {
		idx.SetCompressExtents(opts.CompressExtents)
		idx.FreezeExtents()
	}
}

// saveMagic versions the on-disk format: an envelope (magic + the Options
// the index was opened with) followed by the core index payload. Bump it
// when the envelope changes shape.
const saveMagic = "APEXIDXv2"

// saveEnvelope is the header record written before the index payload, so a
// loaded index keeps its configured parallelism, minimum support, and
// reference-attribute names.
type saveEnvelope struct {
	Magic   string
	Options Options
}

// Load reads an index previously written by Save. The restored index keeps
// the Options it was saved with (parallelism, minSup, reference attributes).
func Load(r io.Reader) (*Index, error) {
	// One shared buffered reader: the envelope and the core payload are
	// separate gob streams, and chaining decoders is only exact when they
	// all read from the same io.ByteReader.
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if !ok {
		br = bufio.NewReader(r)
	}
	var env saveEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return nil, fmt.Errorf("apex: load: %w (not an index file, or written by an incompatible version)", err)
	}
	if env.Magic != saveMagic {
		return nil, fmt.Errorf("apex: load: bad magic %q, want %q", env.Magic, saveMagic)
	}
	idx, err := core.Decode(br)
	if err != nil {
		return nil, err
	}
	dt, err := storage.BuildDataTable(idx.Graph(), 0, 64)
	if err != nil {
		return nil, err
	}
	idx.SetWorkers(env.Options.buildWorkers())
	applyExtentForm(idx, env.Options)
	return &Index{idx: idx, dt: dt, eval: newEvaluator(idx, dt, env.Options), opts: env.Options}, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the index (including the parsed document graph and the Options
// it was opened with) so it can be reopened with Load without the original
// XML.
//
// Deprecated: the monolithic dump is superseded by the durable checkpoint
// directory (Persist / Checkpoint / RecoverDir), which restarts from frozen
// segments plus a WAL tail instead of re-deriving everything. Save now
// requires Options.AllowLegacyDump and will be removed next release; Load
// keeps reading existing dumps, and RecoverDir migrates them.
func (ix *Index) Save(w io.Writer) error {
	if !ix.opts.AllowLegacyDump {
		return fmt.Errorf("apex: Save is deprecated in favor of Persist/RecoverDir (manifest + WAL + segments); set Options.AllowLegacyDump to write a monolithic dump anyway")
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(saveEnvelope{Magic: saveMagic, Options: ix.opts}); err != nil {
		return fmt.Errorf("apex: save: %w", err)
	}
	return ix.idx.Encode(w)
}

// Evaluator returns the underlying query processor — the in-module bridge
// for CLIs and benchmarks that need traced or ad hoc evaluation (the type
// lives in an internal package, so external callers use Query/Explain).
// Direct evaluator use bypasses the index lock and the workload log, and the
// returned evaluator stays bound to the index state current at the call: a
// later Adapt/Insert/Delete publishes a new evaluator.
func (ix *Index) Evaluator() *query.APEXEvaluator {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.eval
}

// Graph returns the parsed document graph (in-module bridge, like
// Evaluator). Like Evaluator, the returned graph is the published snapshot:
// a later Insert/Delete publishes a new one.
func (ix *Index) Graph() *xmlgraph.Graph {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.idx.Graph()
}

// snapshot returns the currently published state. Published structures are
// immutable — maintenance rebuilds clones and swaps — so callers may keep
// using the returned values after the lock is released; they just won't see
// later publications.
func (ix *Index) snapshot() (*core.APEX, *storage.DataTable, *query.APEXEvaluator) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.idx, ix.dt, ix.eval
}

// publish atomically swaps a rebuilt shadow in as the serving state. The
// write lock is held only for the swap and the O(1) cost carry-over —
// independent of how long the rebuild took — so this is the only moment a
// reader can be stalled by maintenance.
func (ix *Index) publish(idx *core.APEX, dt *storage.DataTable) {
	ev := newEvaluator(idx, dt, ix.opts)
	ix.hook("publish")
	ix.mu.Lock()
	ev.CarryCostFrom(ix.eval)
	ix.idx, ix.dt, ix.eval = idx, dt, ev
	// Stamp the evaluator with the generation it serves: its plan cache is
	// keyed by this identity (plus the core epoch), so plans can never cross
	// a publication boundary.
	ev.SetGeneration(int64(ix.gen.Add(1)))
	ix.mu.Unlock()
}

// Generation returns the generation of the currently published snapshot: 0
// for a freshly built index, +1 per Adapt/AdaptTo/Insert/Delete publication.
// Results cached under an older generation are never results of the current
// index — comparing generations is the whole invalidation protocol a
// snapshot-keyed cache needs.
func (ix *Index) Generation() uint64 { return ix.gen.Load() }

func (ix *Index) hook(stage string) {
	if ix.shadowHook != nil {
		ix.shadowHook(stage)
	}
}

// Node is a query-result node.
type Node struct {
	ID    int32  // node identifier (document order is by construction)
	Tag   string // element tag or attribute name
	Value string // character data, if any
}

// Result is the outcome of one query, in document order.
type Result struct {
	Nodes []Node
}

// Values returns the non-empty node values in document order.
func (r *Result) Values() []string {
	var vs []string
	for _, n := range r.Nodes {
		if n.Value != "" {
			vs = append(vs, n.Value)
		}
	}
	return vs
}

// Len returns the number of result nodes.
func (r *Result) Len() int { return len(r.Nodes) }

// Query parses and evaluates one query. Supported forms:
//
//	//a/b/c                  partial-matching path (QTYPE1)
//	//movie/@actor=>actor    dereference of an ID/IDREF attribute
//	//a//b                   descendant pair (QTYPE2)
//	//a/b[text()="v"]        path plus value predicate (QTYPE3)
//	//a/b//c/d//e            general mixed-axis path (extension)
//
// Path queries are recorded in the workload log for Adapt unless the index
// was opened with DisableQueryLog.
//
// Query is safe to call from any number of goroutines: it holds only the
// read side of the index lock, queries evaluate fully in parallel, and
// maintenance rebuilds off to the side — a query blocks only for the
// pointer swap that publishes an Adapt/Insert/Delete.
func (ix *Index) Query(q string) (*Result, error) {
	res, _, err := ix.queryGen(nil, q)
	return res, err
}

// QueryContext is Query under a cancellation context: the evaluation observes
// ctx at its internal checkpoints (between join positions and rewriting legs)
// and returns ctx.Err() once the context is done — the serving layer's
// per-request timeout, threaded all the way into the join loop.
func (ix *Index) QueryContext(ctx context.Context, q string) (*Result, error) {
	res, _, err := ix.queryGen(ctx, q)
	return res, err
}

// QueryGen is QueryContext plus the generation of the published snapshot the
// query actually evaluated against. The generation is read under the same
// read lock as the evaluation snapshot, so a result can never be attributed
// to a publication it did not see — the property a snapshot-keyed result
// cache relies on when it stores the result under the returned generation.
func (ix *Index) QueryGen(ctx context.Context, q string) (*Result, uint64, error) {
	return ix.queryGen(ctx, q)
}

func (ix *Index) queryGen(ctx context.Context, q string) (*Result, uint64, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return nil, 0, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	gen := ix.gen.Load()
	nids, err := ix.eval.EvaluateContext(ctx, parsed)
	if err != nil {
		return nil, gen, err
	}
	ix.logQuery(parsed)
	return ix.materialize(nids), gen, nil
}

// Explain evaluates q exactly like Query and additionally returns the
// structured evaluation trace (query class, matched H_APEX suffix, chosen
// strategy, per-stage cost deltas, wall time). The traced evaluation counts
// toward QueryCost and the workload log just like a plain Query; render the
// trace with its Text or JSON methods.
func (ix *Index) Explain(q string) (*Result, *query.Trace, error) {
	return ix.ExplainContext(nil, q)
}

// ExplainContext is Explain under a cancellation context, with
// QueryContext's checkpoint semantics.
func (ix *Index) ExplainContext(ctx context.Context, q string) (*Result, *query.Trace, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return nil, nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nids, tr, err := ix.eval.EvaluateTraceContext(ctx, parsed)
	if err != nil {
		return nil, nil, err
	}
	ix.logQuery(parsed)
	return ix.materialize(nids), tr, nil
}

// RecordWorkload logs q in the workload log exactly as a served Query would,
// without evaluating it. The serving layer's result cache calls it on cache
// hits: a hit bypasses evaluation, but the query is still workload — exactly
// the frequent-path evidence the next Adapt should mine. Parse errors are
// returned; non-minable query classes are a silent no-op, as in Query.
func (ix *Index) RecordWorkload(q string) error {
	parsed, err := query.Parse(q)
	if err != nil {
		return err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.logQuery(parsed)
	return nil
}

// WorkloadSnapshot returns a copy of the pending workload log without
// consuming it. Adapt remains the only consumer; the background controller
// mines the snapshot every tick to score drift against the serving profile.
func (ix *Index) WorkloadSnapshot() []xmlgraph.LabelPath {
	ix.logMu.Lock()
	defer ix.logMu.Unlock()
	out := make([]xmlgraph.LabelPath, len(ix.workload))
	copy(out, ix.workload)
	return out
}

// logQuery records a path query in the workload log for Adapt, evicting the
// oldest entries when the MaxWorkloadLog bound is hit. Callers hold the read
// side of mu.
func (ix *Index) logQuery(parsed query.Query) {
	if ix.opts.DisableQueryLog || (parsed.Type != query.QTYPE1 && parsed.Type != query.QTYPE3) {
		return
	}
	ix.logMu.Lock()
	defer ix.logMu.Unlock()
	if max := ix.opts.maxWorkloadLog(); max > 0 && len(ix.workload) >= max {
		// Evict in batches of a quarter of the bound (at least one) so the
		// front-shift cost amortizes to O(1) per logged query at steady state.
		drop := max / 4
		if drop < 1 {
			drop = 1
		}
		if over := len(ix.workload) - max + 1; drop < over {
			drop = over
		}
		if drop > len(ix.workload) {
			drop = len(ix.workload)
		}
		ix.workload = append(ix.workload[:0], ix.workload[drop:]...)
		mWorkloadEvicted.Add(int64(drop))
	}
	ix.workload = append(ix.workload, parsed.Path)
}

// materialize builds the public result from node IDs. Callers hold the read
// side of mu.
func (ix *Index) materialize(nids []xmlgraph.NID) *Result {
	g := ix.idx.Graph()
	res := &Result{Nodes: make([]Node, len(nids))}
	for i, n := range nids {
		nd := g.Node(n)
		res.Nodes[i] = Node{ID: int32(n), Tag: nd.Tag, Value: nd.Value}
	}
	return res
}

// Adapt mines the logged query workload for frequently used paths at the
// given minimum support (pass 0 for the Options default), incrementally
// restructures the index, and clears the log. This is the paper's Figure 4
// maintenance cycle, run off the critical path: the restructuring happens on
// a clone of the published index (frozen extents are shared, not copied,
// until the rebuild actually touches them) and queries keep serving the old
// structure until the one-pointer-swap publication. Queries logged while the
// rebuild runs stay in the log for the next Adapt.
func (ix *Index) Adapt(minSup float64) error {
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	if minSup <= 0 {
		minSup = ix.opts.minSup()
	}
	ix.logMu.Lock()
	wl := ix.workload
	ix.workload = nil
	ix.logMu.Unlock()
	if len(wl) == 0 {
		return fmt.Errorf("apex: no logged queries to adapt to")
	}
	cur, dt, _ := ix.snapshot()
	shadow := cur.Clone()
	ix.hook("rebuild")
	shadow.ExtractFrequentPaths(wl, minSup)
	shadow.Update()
	if err := ix.journal(storage.WALRecord{Op: storage.WALAdapt, MinSup: minSup, Paths: wl}); err != nil {
		// The workload was consumed above; put it back so the queries are
		// not lost to the next Adapt just because journaling failed.
		ix.logMu.Lock()
		ix.workload = append(wl, ix.workload...)
		ix.logMu.Unlock()
		return err
	}
	ix.publish(shadow, dt)
	return nil
}

// AdaptTo is Adapt over an explicit workload of query strings instead of
// the internal log (QTYPE2 queries are rejected, as in the paper only path
// expressions are mined). Like Adapt, the restructuring runs on a shadow
// clone and publishes with one atomic swap.
func (ix *Index) AdaptTo(queries []string, minSup float64) error {
	var paths []xmlgraph.LabelPath
	for _, s := range queries {
		q, err := query.Parse(s)
		if err != nil {
			return err
		}
		if q.Type == query.QTYPE2 {
			return fmt.Errorf("apex: workload mining takes path expressions, got %q", s)
		}
		paths = append(paths, q.Path)
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	if minSup <= 0 {
		minSup = ix.opts.minSup()
	}
	cur, dt, _ := ix.snapshot()
	shadow := cur.Clone()
	ix.hook("rebuild")
	shadow.ExtractFrequentPaths(paths, minSup)
	shadow.Update()
	if err := ix.journal(storage.WALRecord{Op: storage.WALAdapt, MinSup: minSup, Paths: paths}); err != nil {
		return err
	}
	ix.publish(shadow, dt)
	return nil
}

// Insert appends an XML fragment under the single element matched by
// parentQuery (a QTYPE1 path; it must match exactly one element node; "/"
// addresses the document root, which label paths cannot reach) and
// refreshes the index: every extent is re-derived under the current
// required-path set — the paper leaves data updates to future work, and
// this is the sound baseline (one pass over the data, no re-parse, no
// re-mining). Reference attributes in the fragment may point at IDs already
// in the document.
//
// The mutation and refresh run on clones of the document graph and index
// (node IDs are stable across the clone, so resolved positions stay valid);
// readers serve the pre-insert state until the atomic publication, and a
// failed insert publishes nothing.
func (ix *Index) Insert(parentQuery, fragment string) error {
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	cur, _, eval := ix.snapshot()
	g := cur.Graph()
	var parent xmlgraph.NID
	if parentQuery == "/" {
		parent = g.Root()
	} else {
		parsed, err := query.Parse(parentQuery)
		if err != nil {
			return err
		}
		if parsed.Type != query.QTYPE1 {
			return fmt.Errorf("apex: insert parent must be a path query, got %v", parsed.Type)
		}
		nids, err := eval.Evaluate(parsed)
		if err != nil {
			return err
		}
		if len(nids) != 1 {
			return fmt.Errorf("apex: insert parent %q matches %d nodes, want exactly 1", parentQuery, len(nids))
		}
		parent = nids[0]
	}
	shadowG := g.Clone()
	shadow := cur.CloneWithGraph(shadowG)
	ix.hook("rebuild")
	if _, err := shadowG.AppendFragment(parent, fragment, &xmlgraph.BuildOptions{
		IDAttrs:     ix.opts.IDAttrs,
		IDREFAttrs:  ix.opts.IDREFAttrs,
		IDREFSAttrs: ix.opts.IDREFSAttrs,
	}); err != nil {
		return err
	}
	shadow.RefreshData()
	// The data table is rebuilt to include the new values.
	dt, err := storage.BuildDataTable(shadowG, 0, 64)
	if err != nil {
		return err
	}
	// Journal the resolved parent NID, not the query: node IDs are stable
	// across clones and deterministic under replay, so recovery re-applies
	// the fragment without needing an evaluator mid-replay.
	if err := ix.journal(storage.WALRecord{
		Op: storage.WALInsert, Parent: parent, ParentQuery: parentQuery, Fragment: fragment,
	}); err != nil {
		return err
	}
	ix.publish(shadow, dt)
	return nil
}

// InsertAtNode is Insert with the parent already resolved to a node id — the
// in-module bridge the shard router uses to broadcast one insert to every
// shard index: node ids are aligned across shards (each shard keeps the full
// global node table), so the coordinator resolves the parent query once and
// applies the same fragment at the same NID everywhere, exactly as WAL
// replay re-applies a journaled insert. The parent must be a live element
// node; like Insert, the mutation runs on shadow clones and publishes
// atomically.
func (ix *Index) InsertAtNode(parent xmlgraph.NID, fragment string) error {
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	cur, _, _ := ix.snapshot()
	g := cur.Graph()
	if parent < 0 || int(parent) >= g.NumNodes() {
		return fmt.Errorf("apex: insert parent %d out of range", parent)
	}
	if g.Removed(parent) {
		return fmt.Errorf("apex: insert parent %d was removed", parent)
	}
	shadowG := g.Clone()
	shadow := cur.CloneWithGraph(shadowG)
	ix.hook("rebuild")
	if _, err := shadowG.AppendFragment(parent, fragment, &xmlgraph.BuildOptions{
		IDAttrs:     ix.opts.IDAttrs,
		IDREFAttrs:  ix.opts.IDREFAttrs,
		IDREFSAttrs: ix.opts.IDREFSAttrs,
	}); err != nil {
		return err
	}
	shadow.RefreshData()
	dt, err := storage.BuildDataTable(shadowG, 0, 64)
	if err != nil {
		return err
	}
	if err := ix.journal(storage.WALRecord{
		Op: storage.WALInsert, Parent: parent, Fragment: fragment,
	}); err != nil {
		return err
	}
	ix.publish(shadow, dt)
	return nil
}

// DeleteNodes removes the document subtrees rooted at the given node ids —
// the in-module bridge the shard router uses to apply one coordinated
// delete: the router unions the shards' match sets into the global target
// set and removes the same NIDs on every shard, mirroring how WAL replay
// re-applies a journaled delete by its resolved targets. Targets nested
// inside other targets (or already removed) are skipped; removing nothing at
// all is an error, as in Delete.
func (ix *Index) DeleteNodes(targets []xmlgraph.NID) error {
	if len(targets) == 0 {
		return fmt.Errorf("apex: delete with no targets")
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	cur, _, _ := ix.snapshot()
	shadowG := cur.Graph().Clone()
	shadow := cur.CloneWithGraph(shadowG)
	ix.hook("rebuild")
	removedAny := false
	for _, n := range targets {
		if shadowG.Removed(n) {
			continue
		}
		if err := shadowG.RemoveSubtree(n); err != nil {
			return err
		}
		removedAny = true
	}
	if !removedAny {
		return fmt.Errorf("apex: delete targets already removed")
	}
	shadow.RefreshData()
	dt, err := storage.BuildDataTable(shadowG, 0, 64)
	if err != nil {
		return err
	}
	if err := ix.journal(storage.WALRecord{
		Op: storage.WALDelete, Targets: targets,
	}); err != nil {
		return err
	}
	ix.publish(shadow, dt)
	return nil
}

// Delete removes the document subtrees matched by targetQuery (a QTYPE1
// path; every matched element and its content disappears) and refreshes the
// index under the current required-path set. References into the deleted
// subtrees stop dereferencing; their attribute values remain as data.
// Deleting zero nodes is an error, as is matching the document root.
//
// Like Insert, the removal and refresh run on shadow clones and publish
// atomically; a failed delete publishes nothing.
func (ix *Index) Delete(targetQuery string) error {
	parsed, err := query.Parse(targetQuery)
	if err != nil {
		return err
	}
	if parsed.Type != query.QTYPE1 {
		return fmt.Errorf("apex: delete target must be a path query, got %v", parsed.Type)
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	cur, _, eval := ix.snapshot()
	nids, err := eval.Evaluate(parsed)
	if err != nil {
		return err
	}
	if len(nids) == 0 {
		return fmt.Errorf("apex: delete target %q matches nothing", targetQuery)
	}
	shadowG := cur.Graph().Clone()
	shadow := cur.CloneWithGraph(shadowG)
	ix.hook("rebuild")
	removedAny := false
	for _, n := range nids {
		if shadowG.Removed(n) {
			continue // nested inside an already-removed match
		}
		if err := shadowG.RemoveSubtree(n); err != nil {
			return err
		}
		removedAny = true
	}
	if !removedAny {
		return fmt.Errorf("apex: delete target %q removed nothing", targetQuery)
	}
	shadow.RefreshData()
	dt, err := storage.BuildDataTable(shadowG, 0, 64)
	if err != nil {
		return err
	}
	if err := ix.journal(storage.WALRecord{
		Op: storage.WALDelete, Targets: nids, TargetQuery: targetQuery,
	}); err != nil {
		return err
	}
	ix.publish(shadow, dt)
	return nil
}

// Stats describes the current index structure.
type Stats struct {
	// Nodes and Edges size the summary graph G_APEX (the paper's Table 2).
	Nodes, Edges int
	// ExtentEdges is the total extent volume.
	ExtentEdges int
	// RequiredPaths lists the label paths the index currently maintains
	// (all length-1 labels plus the mined frequent paths).
	RequiredPaths []string
	// LoggedQueries is the size of the pending workload log.
	LoggedQueries int
	// Extents counts the live frozen extents — with ExtentBytes it gives
	// the bytes-per-extent estimate the adaptation controller's memory-
	// budget projection uses.
	Extents int
	// ExtentBytes is the serving-form memory of every live extent column;
	// ExtentBlocks the packed blocks backing them and CompressedExtents the
	// extents in block-compressed form (both zero when CompressExtents is
	// off). BytesPerEdge = ExtentBytes / total extent pairs, the headline
	// footprint number (~20 flat, well under 12 compressed).
	ExtentBytes       int
	ExtentBlocks      int
	CompressedExtents int
	BytesPerEdge      float64
}

// Stats snapshots the index structure.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.logMu.Lock()
	logged := len(ix.workload)
	ix.logMu.Unlock()
	st := ix.idx.Stats()
	fp := ix.idx.Footprint()
	return Stats{
		Nodes:             st.Nodes,
		Edges:             st.Edges,
		ExtentEdges:       st.ExtentEdges,
		RequiredPaths:     ix.idx.RequiredPaths(),
		LoggedQueries:     logged,
		Extents:           fp.Extents,
		ExtentBytes:       fp.Bytes,
		ExtentBlocks:      fp.Blocks,
		CompressedExtents: fp.Compressed,
		BytesPerEdge:      fp.BytesPerEdge(),
	}
}

// PlanStats is the query planner's observability record: plan/leg cache
// behavior, the decision mix (forward vs backward executions, fallbacks,
// shared-prefix reuse), and the publication identities the caches are keyed
// under.
type PlanStats = query.PlanStats

// PlanStats snapshots the published evaluator's planner counters. The
// counters restart at zero on every maintenance publication (a fresh
// evaluator is published per generation), so deltas within one generation
// measure steady-state cache behavior.
func (ix *Index) PlanStats() PlanStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.eval.PlanStats()
}

// QueryCost snapshots the accumulated logical cost counters of the query
// processor (hash lookups, extent scans, join probes, data validations).
// The counters are cumulative across maintenance publications.
func (ix *Index) QueryCost() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.eval.Cost().String()
}

// QueryCostTotal is the sum of those counters — one number whose deltas
// measure the logical work per evaluated query, machine-portably (the drift
// experiment compares it across controller-on/off runs).
func (ix *Index) QueryCostTotal() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.eval.Cost().Total()
}

// ResetQueryCost zeroes the cost counters.
func (ix *Index) ResetQueryCost() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.eval.ResetCost()
}
