// Package apex is a workload-adaptive path index for XML data — a Go
// implementation of APEX (Min, Chung, Shim; ACM SIGMOD 2002).
//
// APEX summarizes an XML document (or document graph, via ID/IDREF
// attributes) into two coupled structures: a summary graph whose nodes
// carry extents (the edges reachable by a required label path), and a hash
// tree mapping label-path suffixes to summary nodes in reverse label order.
// It always answers any label-path query from the index alone — every
// label path of length two is indexed — and additionally keeps the longer
// paths that the observed query workload uses frequently, so partial
// matching queries (the //a/b/c kind) resolve in a hash lookup instead of
// an index traversal. The index adapts incrementally as the workload
// drifts.
//
// Basic use:
//
//	ix, err := apex.Open(xmlFile, nil)
//	res, err := ix.Query("//actor/name")
//	...
//	err = ix.Adapt(0.005) // mine the logged queries, reshape the index
//
// The three supported query shapes follow the paper's experiments:
// partial-matching paths ("//act/scene/line", with "=>" dereferencing
// ID/IDREF attributes), descendant pairs ("//act//line"), and value
// queries ("//title[text()=\"Hamlet\"]").
package apex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"

	"apex/internal/core"
	"apex/internal/query"
	"apex/internal/storage"
	"apex/internal/xmlgraph"
)

// Options configures Open.
type Options struct {
	// IDAttrs names the attributes that declare element identifiers
	// (default: "id").
	IDAttrs []string
	// IDREFAttrs and IDREFSAttrs name reference attributes; they turn the
	// document into a graph exactly as the paper's Figure 1 does.
	IDREFAttrs  []string
	IDREFSAttrs []string
	// MinSup is the minimum support used by Adapt when called with no
	// explicit value (default 0.005, the paper's sweet spot).
	MinSup float64
	// DisableQueryLog turns off the built-in workload log (Query calls are
	// then not recorded for Adapt).
	DisableQueryLog bool
	// Parallelism bounds the worker pool the query processor uses to fan
	// out extent scans, join probes, and value validations inside a single
	// query (0 = GOMAXPROCS, 1 = fully serial evaluation). The pool is
	// shared by all concurrent queries on the index.
	Parallelism int
}

func (o *Options) minSup() float64 {
	if o == nil || o.MinSup <= 0 {
		return 0.005
	}
	return o.MinSup
}

// Index is an APEX index over one document, together with its data table
// and query processor. An Index is safe for arbitrary concurrent use:
// queries share a read lock and run fully in parallel (APEX's structures
// are read-mostly between adaptation rounds — the paper's life cycle is
// build, serve many queries, occasionally adapt), while Adapt, AdaptTo,
// Insert, and Delete build their changes under the write lock and publish
// atomically, so a reader never observes a half-updated G_APEX or H_APEX.
// See README.md ("Concurrency model") for the exact guarantees.
type Index struct {
	// mu is the reader/writer gate: Query, Stats, Save, and the cost
	// accessors take the read side; Adapt, AdaptTo, Insert, and Delete take
	// the write side. Readers never block each other.
	mu   sync.RWMutex
	idx  *core.APEX
	dt   *storage.DataTable
	eval *query.APEXEvaluator
	opts Options

	// logMu guards the workload log separately: Query appends to it while
	// holding only the read side of mu, so concurrent readers need their
	// own serialization point for the log.
	logMu    sync.Mutex
	workload []xmlgraph.LabelPath
}

// Open parses an XML document and builds the initial index APEX⁰.
func Open(r io.Reader, opts *Options) (*Index, error) {
	if opts == nil {
		opts = &Options{}
	}
	g, err := xmlgraph.Build(r, &xmlgraph.BuildOptions{
		IDAttrs:     opts.IDAttrs,
		IDREFAttrs:  opts.IDREFAttrs,
		IDREFSAttrs: opts.IDREFSAttrs,
	})
	if err != nil {
		return nil, err
	}
	return fromGraph(g, *opts)
}

// OpenFile is Open over a file path.
func OpenFile(path string, opts *Options) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Open(f, opts)
}

// FromGraph builds the initial index over an already-parsed document graph.
// It is the in-module bridge for tools and benchmarks that construct graphs
// directly (the type lives in an internal package, so callers outside this
// module use Open instead).
func FromGraph(g *xmlgraph.Graph, opts *Options) (*Index, error) {
	if opts == nil {
		opts = &Options{}
	}
	return fromGraph(g, *opts)
}

func fromGraph(g *xmlgraph.Graph, opts Options) (*Index, error) {
	dt, err := storage.BuildDataTable(g, 0, 64)
	if err != nil {
		return nil, err
	}
	idx := core.BuildAPEX0(g)
	return &Index{
		idx:  idx,
		dt:   dt,
		eval: newEvaluator(idx, dt, opts),
		opts: opts,
	}, nil
}

// newEvaluator wires a query processor with the configured parallelism.
func newEvaluator(idx *core.APEX, dt *storage.DataTable, opts Options) *query.APEXEvaluator {
	ev := query.NewAPEXEvaluator(idx, dt)
	if opts.Parallelism != 0 {
		ev.SetParallelism(opts.Parallelism)
	}
	return ev
}

// FromCore wraps an already-built core index (the in-module bridge for the
// CLIs, which assemble indexes with explicit workloads before saving them).
func FromCore(idx *core.APEX, opts *Options) (*Index, error) {
	if opts == nil {
		opts = &Options{}
	}
	dt, err := storage.BuildDataTable(idx.Graph(), 0, 64)
	if err != nil {
		return nil, err
	}
	return &Index{idx: idx, dt: dt, eval: newEvaluator(idx, dt, *opts), opts: *opts}, nil
}

// saveMagic versions the on-disk format: an envelope (magic + the Options
// the index was opened with) followed by the core index payload. Bump it
// when the envelope changes shape.
const saveMagic = "APEXIDXv2"

// saveEnvelope is the header record written before the index payload, so a
// loaded index keeps its configured parallelism, minimum support, and
// reference-attribute names.
type saveEnvelope struct {
	Magic   string
	Options Options
}

// Load reads an index previously written by Save. The restored index keeps
// the Options it was saved with (parallelism, minSup, reference attributes).
func Load(r io.Reader) (*Index, error) {
	// One shared buffered reader: the envelope and the core payload are
	// separate gob streams, and chaining decoders is only exact when they
	// all read from the same io.ByteReader.
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if !ok {
		br = bufio.NewReader(r)
	}
	var env saveEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return nil, fmt.Errorf("apex: load: %w (not an index file, or written by an incompatible version)", err)
	}
	if env.Magic != saveMagic {
		return nil, fmt.Errorf("apex: load: bad magic %q, want %q", env.Magic, saveMagic)
	}
	idx, err := core.Decode(br)
	if err != nil {
		return nil, err
	}
	dt, err := storage.BuildDataTable(idx.Graph(), 0, 64)
	if err != nil {
		return nil, err
	}
	return &Index{idx: idx, dt: dt, eval: newEvaluator(idx, dt, env.Options), opts: env.Options}, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the index (including the parsed document graph and the Options
// it was opened with) so it can be reopened with Load without the original
// XML.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(saveEnvelope{Magic: saveMagic, Options: ix.opts}); err != nil {
		return fmt.Errorf("apex: save: %w", err)
	}
	return ix.idx.Encode(w)
}

// Evaluator returns the underlying query processor — the in-module bridge
// for CLIs and benchmarks that need traced or ad hoc evaluation (the type
// lives in an internal package, so external callers use Query/Explain).
// Direct evaluator use bypasses the index lock and the workload log.
func (ix *Index) Evaluator() *query.APEXEvaluator { return ix.eval }

// Graph returns the parsed document graph (in-module bridge, like
// Evaluator).
func (ix *Index) Graph() *xmlgraph.Graph { return ix.idx.Graph() }

// Node is a query-result node.
type Node struct {
	ID    int32  // node identifier (document order is by construction)
	Tag   string // element tag or attribute name
	Value string // character data, if any
}

// Result is the outcome of one query, in document order.
type Result struct {
	Nodes []Node
}

// Values returns the non-empty node values in document order.
func (r *Result) Values() []string {
	var vs []string
	for _, n := range r.Nodes {
		if n.Value != "" {
			vs = append(vs, n.Value)
		}
	}
	return vs
}

// Len returns the number of result nodes.
func (r *Result) Len() int { return len(r.Nodes) }

// Query parses and evaluates one query. Supported forms:
//
//	//a/b/c                  partial-matching path (QTYPE1)
//	//movie/@actor=>actor    dereference of an ID/IDREF attribute
//	//a//b                   descendant pair (QTYPE2)
//	//a/b[text()="v"]        path plus value predicate (QTYPE3)
//	//a/b//c/d//e            general mixed-axis path (extension)
//
// Path queries are recorded in the workload log for Adapt unless the index
// was opened with DisableQueryLog.
//
// Query is safe to call from any number of goroutines: it holds only the
// read side of the index lock, so queries evaluate fully in parallel and
// block only while an Adapt/Insert/Delete publishes its changes.
func (ix *Index) Query(q string) (*Result, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nids, err := ix.eval.Evaluate(parsed)
	if err != nil {
		return nil, err
	}
	ix.logQuery(parsed)
	return ix.materialize(nids), nil
}

// Explain evaluates q exactly like Query and additionally returns the
// structured evaluation trace (query class, matched H_APEX suffix, chosen
// strategy, per-stage cost deltas, wall time). The traced evaluation counts
// toward QueryCost and the workload log just like a plain Query; render the
// trace with its Text or JSON methods.
func (ix *Index) Explain(q string) (*Result, *query.Trace, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return nil, nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nids, tr, err := ix.eval.EvaluateTrace(parsed)
	if err != nil {
		return nil, nil, err
	}
	ix.logQuery(parsed)
	return ix.materialize(nids), tr, nil
}

// logQuery records a path query in the workload log for Adapt. Callers hold
// the read side of mu.
func (ix *Index) logQuery(parsed query.Query) {
	if !ix.opts.DisableQueryLog && (parsed.Type == query.QTYPE1 || parsed.Type == query.QTYPE3) {
		ix.logMu.Lock()
		ix.workload = append(ix.workload, parsed.Path)
		ix.logMu.Unlock()
	}
}

// materialize builds the public result from node IDs. Callers hold the read
// side of mu.
func (ix *Index) materialize(nids []xmlgraph.NID) *Result {
	g := ix.idx.Graph()
	res := &Result{Nodes: make([]Node, len(nids))}
	for i, n := range nids {
		nd := g.Node(n)
		res.Nodes[i] = Node{ID: int32(n), Tag: nd.Tag, Value: nd.Value}
	}
	return res
}

// Adapt mines the logged query workload for frequently used paths at the
// given minimum support (pass 0 for the Options default), incrementally
// restructures the index, and clears the log. This is the paper's Figure 4
// maintenance cycle.
func (ix *Index) Adapt(minSup float64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if minSup <= 0 {
		minSup = ix.opts.minSup()
	}
	ix.logMu.Lock()
	wl := ix.workload
	ix.workload = nil
	ix.logMu.Unlock()
	if len(wl) == 0 {
		return fmt.Errorf("apex: no logged queries to adapt to")
	}
	ix.idx.ExtractFrequentPaths(wl, minSup)
	ix.idx.Update()
	return nil
}

// AdaptTo is Adapt over an explicit workload of query strings instead of
// the internal log (QTYPE2 queries are rejected, as in the paper only path
// expressions are mined).
func (ix *Index) AdaptTo(queries []string, minSup float64) error {
	var paths []xmlgraph.LabelPath
	for _, s := range queries {
		q, err := query.Parse(s)
		if err != nil {
			return err
		}
		if q.Type == query.QTYPE2 {
			return fmt.Errorf("apex: workload mining takes path expressions, got %q", s)
		}
		paths = append(paths, q.Path)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if minSup <= 0 {
		minSup = ix.opts.minSup()
	}
	ix.idx.ExtractFrequentPaths(paths, minSup)
	ix.idx.Update()
	return nil
}

// Insert appends an XML fragment under the single element matched by
// parentQuery (a QTYPE1 path; it must match exactly one element node; "/"
// addresses the document root, which label paths cannot reach) and
// refreshes the index: every extent is re-derived under the current
// required-path set — the paper leaves data updates to future work, and
// this is the sound baseline (one pass over the data, no re-parse, no
// re-mining). Reference attributes in the fragment may point at IDs already
// in the document.
func (ix *Index) Insert(parentQuery, fragment string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	g := ix.idx.Graph()
	var parent xmlgraph.NID
	if parentQuery == "/" {
		parent = g.Root()
	} else {
		parsed, err := query.Parse(parentQuery)
		if err != nil {
			return err
		}
		if parsed.Type != query.QTYPE1 {
			return fmt.Errorf("apex: insert parent must be a path query, got %v", parsed.Type)
		}
		nids, err := ix.eval.Evaluate(parsed)
		if err != nil {
			return err
		}
		if len(nids) != 1 {
			return fmt.Errorf("apex: insert parent %q matches %d nodes, want exactly 1", parentQuery, len(nids))
		}
		parent = nids[0]
	}
	if _, err := g.AppendFragment(parent, fragment, &xmlgraph.BuildOptions{
		IDAttrs:     ix.opts.IDAttrs,
		IDREFAttrs:  ix.opts.IDREFAttrs,
		IDREFSAttrs: ix.opts.IDREFSAttrs,
	}); err != nil {
		return err
	}
	ix.idx.RefreshData()
	// The data table is rebuilt to include the new values.
	dt, err := storage.BuildDataTable(g, 0, 64)
	if err != nil {
		return err
	}
	ix.dt = dt
	ix.eval = newEvaluator(ix.idx, dt, ix.opts)
	return nil
}

// Delete removes the document subtrees matched by targetQuery (a QTYPE1
// path; every matched element and its content disappears) and refreshes the
// index under the current required-path set. References into the deleted
// subtrees stop dereferencing; their attribute values remain as data.
// Deleting zero nodes is an error, as is matching the document root.
func (ix *Index) Delete(targetQuery string) error {
	parsed, err := query.Parse(targetQuery)
	if err != nil {
		return err
	}
	if parsed.Type != query.QTYPE1 {
		return fmt.Errorf("apex: delete target must be a path query, got %v", parsed.Type)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	nids, err := ix.eval.Evaluate(parsed)
	if err != nil {
		return err
	}
	if len(nids) == 0 {
		return fmt.Errorf("apex: delete target %q matches nothing", targetQuery)
	}
	g := ix.idx.Graph()
	removedAny := false
	for _, n := range nids {
		if g.Removed(n) {
			continue // nested inside an already-removed match
		}
		if err := g.RemoveSubtree(n); err != nil {
			return err
		}
		removedAny = true
	}
	if !removedAny {
		return fmt.Errorf("apex: delete target %q removed nothing", targetQuery)
	}
	ix.idx.RefreshData()
	dt, err := storage.BuildDataTable(g, 0, 64)
	if err != nil {
		return err
	}
	ix.dt = dt
	ix.eval = newEvaluator(ix.idx, dt, ix.opts)
	return nil
}

// Stats describes the current index structure.
type Stats struct {
	// Nodes and Edges size the summary graph G_APEX (the paper's Table 2).
	Nodes, Edges int
	// ExtentEdges is the total extent volume.
	ExtentEdges int
	// RequiredPaths lists the label paths the index currently maintains
	// (all length-1 labels plus the mined frequent paths).
	RequiredPaths []string
	// LoggedQueries is the size of the pending workload log.
	LoggedQueries int
}

// Stats snapshots the index structure.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.logMu.Lock()
	logged := len(ix.workload)
	ix.logMu.Unlock()
	st := ix.idx.Stats()
	return Stats{
		Nodes:         st.Nodes,
		Edges:         st.Edges,
		ExtentEdges:   st.ExtentEdges,
		RequiredPaths: ix.idx.RequiredPaths(),
		LoggedQueries: logged,
	}
}

// QueryCost snapshots the accumulated logical cost counters of the query
// processor (hash lookups, extent scans, join probes, data validations).
func (ix *Index) QueryCost() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.eval.Cost().String()
}

// ResetQueryCost zeroes the cost counters.
func (ix *Index) ResetQueryCost() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.eval.ResetCost()
}
