package apex_test

// One testing.B benchmark per experiment of the paper (Tables 1–2,
// Figures 13–15) plus the ablations DESIGN.md calls out. Each benchmark
// re-runs its full experiment batch per iteration and reports the logical
// weighted cost per query as custom metrics, so `go test -bench=.` prints
// both wall time and the hardware-independent numbers EXPERIMENTS.md
// discusses. The data sets are scaled down (see benchConfig); run
// `cmd/apexbench -paper` for the full-size protocol.
//
// This file is an external test package (apex_test, not apex) because
// internal/bench's concurrency experiment imports the apex facade; keeping
// these benchmarks inside package apex would close an import cycle.

import (
	"sync"
	"testing"

	"apex"
	"apex/internal/bench"
	"apex/internal/core"
	"apex/internal/datagen"
	"apex/internal/dataguide"
	"apex/internal/fabric"
	"apex/internal/oneindex"
	"apex/internal/workload"
)

func benchConfig() bench.Config {
	c := bench.DefaultConfig()
	c.Scale = 0.03
	c.NumQ1, c.NumQ2, c.NumQ3 = 300, 40, 80
	return c
}

var (
	benchOnce sync.Once
	benchE    *bench.Env
)

func env(b *testing.B) *bench.Env {
	b.Helper()
	benchOnce.Do(func() { benchE = bench.NewEnv(benchConfig()) })
	return benchE
}

func reportPerQuery(b *testing.B, name string, r bench.RunResult, n int) {
	b.ReportMetric(float64(r.Cost.WeightedTotal())/float64(n), name+"-wcost/q")
}

// BenchmarkTable1 regenerates the nine data sets and their statistics.
func BenchmarkTable1(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2 builds every index structure of Table 2 (SDG, APEX⁰,
// APEX across the minSup sweep, 1-index) for all nine data sets.
func BenchmarkTable2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig13(b *testing.B, family string) {
	e := env(b)
	cfg := e.Config()
	for i := 0; i < b.N; i++ {
		rows, err := e.Fig13(family)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1] // largest file of the family
		reportPerQuery(b, "SDG", last.SDG, cfg.NumQ1)
		reportPerQuery(b, "APEX0", last.APEX0, cfg.NumQ1)
		reportPerQuery(b, "APEX", last.APEX[cfg.FixedMinSup], cfg.NumQ1)
	}
}

// BenchmarkFig13_Plays is Figure 13(a): QTYPE1 over the play corpus.
func BenchmarkFig13_Plays(b *testing.B) { benchFig13(b, "plays") }

// BenchmarkFig13_FlixML is Figure 13(b): QTYPE1 over FlixML.
func BenchmarkFig13_FlixML(b *testing.B) { benchFig13(b, "flixml") }

// BenchmarkFig13_GedML is Figure 13(c): QTYPE1 over GedML.
func BenchmarkFig13_GedML(b *testing.B) { benchFig13(b, "gedml") }

// BenchmarkFig14 is the QTYPE2 comparison of Figure 14.
func BenchmarkFig14(b *testing.B) {
	e := env(b)
	cfg := e.Config()
	for i := 0; i < b.N; i++ {
		rows, err := e.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		ged := rows[len(rows)-1]
		reportPerQuery(b, "SDG", ged.SDG, cfg.NumQ2)
		reportPerQuery(b, "APEX0", ged.APEX0, cfg.NumQ2)
		reportPerQuery(b, "APEX", ged.APEX, cfg.NumQ2)
	}
}

// BenchmarkFig15 is the QTYPE3 comparison of Figure 15.
func BenchmarkFig15(b *testing.B) {
	e := env(b)
	cfg := e.Config()
	for i := 0; i < b.N; i++ {
		rows, err := e.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		ged := rows[len(rows)-1]
		reportPerQuery(b, "Fabric", ged.Fabric, cfg.NumQ3)
		reportPerQuery(b, "SDG", ged.SDG, cfg.NumQ3)
		reportPerQuery(b, "APEX", ged.APEX, cfg.NumQ3)
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationFastPath isolates the hash tree's direct answering.
func BenchmarkAblationFastPath(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		on, off, err := e.AblationFastPath("Flix02.xml")
		if err != nil {
			b.Fatal(err)
		}
		reportPerQuery(b, "on", on, e.Config().NumQ1)
		reportPerQuery(b, "off", off, e.Config().NumQ1)
	}
}

// BenchmarkAblationRefinement isolates workload-refined join inputs.
func BenchmarkAblationRefinement(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		refined, plain, err := e.AblationRefinement("Flix02.xml")
		if err != nil {
			b.Fatal(err)
		}
		reportPerQuery(b, "refined", refined, e.Config().NumQ1)
		reportPerQuery(b, "plain", plain, e.Config().NumQ1)
	}
}

// BenchmarkAblationQ2Rewriting compares 2002-style rewriting with the
// linear product on the DataGuide.
func BenchmarkAblationQ2Rewriting(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		paper, product, err := e.AblationQ2Rewriting("Ged02.xml")
		if err != nil {
			b.Fatal(err)
		}
		reportPerQuery(b, "rewrite", paper, e.Config().NumQ2)
		reportPerQuery(b, "product", product, e.Config().NumQ2)
	}
}

// BenchmarkAblationFabricScan compares the fabric's whole-trie scan with
// path-layer probing.
func BenchmarkAblationFabricScan(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		full, layered, err := e.AblationFabricScan("Ged02.xml")
		if err != nil {
			b.Fatal(err)
		}
		reportPerQuery(b, "full", full, e.Config().NumQ3)
		reportPerQuery(b, "layer", layered, e.Config().NumQ3)
	}
}

// BenchmarkAblationUpdate compares incremental adaptation with a rebuild.
func BenchmarkAblationUpdate(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		inc, reb, err := e.AblationUpdate("Flix02.xml")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(inc.Nanoseconds()), "incremental-ns")
		b.ReportMetric(float64(reb.Nanoseconds()), "rebuild-ns")
	}
}

// BenchmarkAblationExtentStorage reports the remainder discipline's
// storage saving.
func BenchmarkAblationExtentStorage(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		stored, naive, err := e.AblationExtentStorage("Ged02.xml")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stored), "stored-edges")
		b.ReportMetric(float64(naive), "naive-edges")
	}
}

// BenchmarkExtensionASR contrasts access support relations (predefined
// paths, Section 2 of the paper) with APEX on the full QTYPE1 population.
func BenchmarkExtensionASR(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		cmp, err := e.CompareASR("Flix02.xml")
		if err != nil {
			b.Fatal(err)
		}
		if !cmp.ResultsAgreed {
			b.Fatal("result mismatch")
		}
		b.ReportMetric(float64(cmp.ASRCost)/float64(e.Config().NumQ1), "ASR-cost/q")
		b.ReportMetric(float64(cmp.APEXCost)/float64(e.Config().NumQ1), "APEX-cost/q")
		b.ReportMetric(float64(cmp.ASRFallbacks), "ASR-fallbacks")
	}
}

// BenchmarkExtensionMixed measures the QMIXED extension (general
// mixed-axis queries) over APEX and the strong DataGuide.
func BenchmarkExtensionMixed(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		cmp, err := e.CompareMixed("Ged02.xml", 40)
		if err != nil {
			b.Fatal(err)
		}
		if !cmp.ResultsOK {
			b.Fatal("result mismatch")
		}
		b.ReportMetric(float64(cmp.APEX.Cost.WeightedTotal())/float64(cmp.Queries), "APEX-wcost/q")
		b.ReportMetric(float64(cmp.SDG.Cost.WeightedTotal())/float64(cmp.Queries), "SDG-wcost/q")
	}
}

// --- Concurrency ----------------------------------------------------------

// concurrentIndex builds a workload-adapted facade index plus its query
// strings, shared by the concurrent-throughput benchmarks.
func concurrentIndex(b *testing.B, logQueries bool) (*apex.Index, []string) {
	b.Helper()
	ds, err := datagen.LoadDataset("Flix02.xml", 0.05)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(ds.Graph, 1)
	q1 := gen.QType1(300)
	qs := make([]string, len(q1))
	for i, q := range q1 {
		qs[i] = q.String()
	}
	ix, err := apex.FromGraph(ds.Graph, &apex.Options{
		Parallelism:     1,
		DisableQueryLog: !logQueries,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.AdaptTo(qs[:60], 0.005); err != nil {
		b.Fatal(err)
	}
	return ix, qs
}

// BenchmarkConcurrentQuery measures the concurrent read path: RunParallel
// issues workload queries from GOMAXPROCS goroutines against one shared
// index (compare against -cpu=1 for the serialized baseline). This is the
// benchmark the CI job smokes at -benchtime=100ms on every PR.
func BenchmarkConcurrentQuery(b *testing.B) {
	ix, qs := concurrentIndex(b, false)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := ix.Query(qs[i%len(qs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkConcurrentQueryWithAdapt is the contended variant: the same
// parallel readers while this goroutine keeps re-adapting the index, so
// every iteration batch crosses reader/writer publishes.
func BenchmarkConcurrentQueryWithAdapt(b *testing.B) {
	ix, qs := concurrentIndex(b, true)
	stop := make(chan struct{})
	var adapterDone sync.WaitGroup
	adapterDone.Add(1)
	go func() {
		defer adapterDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = ix.Adapt(0) // empty-log rounds are fine
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := ix.Query(qs[i%len(qs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	adapterDone.Wait()
}

// --- Construction micro-benchmarks ---------------------------------------

func benchGraph(b *testing.B) *datagen.Dataset {
	b.Helper()
	ds, err := datagen.LoadDataset("Flix02.xml", 0.05)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkBuildAPEX0 measures initial index construction.
func BenchmarkBuildAPEX0(b *testing.B) {
	ds := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildAPEX0(ds.Graph)
	}
}

// BenchmarkBuildDataGuide measures strong DataGuide determinization.
func BenchmarkBuildDataGuide(b *testing.B) {
	ds := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataguide.Build(ds.Graph)
	}
}

// BenchmarkBuildOneIndex measures bisimulation partition refinement.
func BenchmarkBuildOneIndex(b *testing.B) {
	ds := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oneindex.Build(ds.Graph)
	}
}

// BenchmarkBuildFabric measures Patricia-trie construction.
func BenchmarkBuildFabric(b *testing.B) {
	ds := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fabric.Build(ds.Graph, nil)
	}
}
