package apex

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"apex/internal/core"
	"apex/internal/metrics"
	"apex/internal/storage"
	"apex/internal/xmlgraph"
)

// Durable persistence replaces the monolithic Save/Load dump with a
// checkpoint directory:
//
//	MANIFEST.json          durability root, swapped atomically
//	graph-%08d.bin         the data graph (xmlgraph binary wire form)
//	structure-%08d.gob     G_APEX nodes/edges + H_APEX, extents elided
//	extents-%08d.seg       frozen extent columns, delta-encoded
//	wal-%08d.log           writes journaled since the checkpoint
//
// Every Insert/Delete/Adapt/AdaptTo on a durable index appends one WAL
// record (fsynced, group-committed) before the in-memory publication, so
// RecoverDir can rebuild the exact published state: open the last
// checkpoint, replay the WAL tail onto it, publish by pointer swap. The
// burst of journaled writes costs one shadow-decoded rebuild on replay, not
// one full dump per write. See DESIGN.md's file-format appendix.

// ErrNoManifest reports that RecoverDir found no manifest in the directory.
var ErrNoManifest = errors.New("apex: no manifest in directory")

var (
	mJournaledWrites = metrics.Default.Counter("apex.durable.journaled_writes_total")
	mCheckpoints     = metrics.Default.Counter("apex.durable.checkpoints_total")
	mCheckpointNS    = metrics.Default.Histogram("apex.durable.checkpoint_ns")
	mSegmentBytes    = metrics.Default.Gauge("apex.durable.segment_bytes")
	mCheckpointBytes = metrics.Default.Gauge("apex.durable.checkpoint_bytes")
	mReplayedWrites  = metrics.Default.Counter("apex.durable.replayed_writes_total")
	mWALRotations    = metrics.Default.Counter("apex.durable.wal_rotations_total")
)

// durableState is the persistence attachment of an Index. The WAL pointer
// and sequence fields are mutated only under the index's maintMu;
// statsMu additionally guards them for concurrent DurabilityStats readers.
type durableState struct {
	dir string

	statsMu          sync.Mutex
	wal              *storage.WAL
	seq              int64 // checkpoint sequence, embedded in file names
	manifest         *storage.Manifest
	checkpointBytes  int64 // graph + structure + segment bytes of the last checkpoint
	segmentBytes     int64 // segment-file bytes of the last checkpoint
	lastCheckpointNS int64
	replayed         int64 // WAL records replayed when this index was recovered
	tailTruncated    bool  // recovery found (and dropped) a torn WAL tail
	closed           bool
}

// DurabilityStats describes the persistence attachment of a durable index.
type DurabilityStats struct {
	Dir              string `json:"dir"`
	Generation       uint64 `json:"generation"`
	CheckpointSeq    int64  `json:"checkpoint_seq"`
	LastCheckpointNS int64  `json:"last_checkpoint_unix_ns"`
	CheckpointBytes  int64  `json:"checkpoint_bytes"`
	SegmentBytes     int64  `json:"segment_bytes"`
	WALRecords       int64  `json:"wal_records"`
	WALBytes         int64  `json:"wal_bytes"`
	ReplayedRecords  int64  `json:"replayed_records"`
	WALTailTruncated bool   `json:"wal_tail_truncated"`
}

// Durable reports whether the index journals to a checkpoint directory.
func (ix *Index) Durable() bool { return ix.dur != nil }

// DurabilityStats snapshots the persistence state; ok is false for an index
// without a durability attachment.
func (ix *Index) DurabilityStats() (DurabilityStats, bool) {
	d := ix.dur
	if d == nil {
		return DurabilityStats{}, false
	}
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	st := DurabilityStats{
		Dir:              d.dir,
		Generation:       ix.gen.Load(),
		CheckpointSeq:    d.seq,
		LastCheckpointNS: d.lastCheckpointNS,
		CheckpointBytes:  d.checkpointBytes,
		SegmentBytes:     d.segmentBytes,
		ReplayedRecords:  d.replayed,
		WALTailTruncated: d.tailTruncated,
	}
	if d.wal != nil {
		st.WALRecords, st.WALBytes = d.wal.Stats()
	}
	return st, true
}

// journal appends one WAL record and waits for it to be durable. Called on
// the write path under maintMu, after the shadow rebuild succeeded and
// before publication — a journaling failure aborts the write unpublished,
// so the log never trails the published state.
func (ix *Index) journal(rec storage.WALRecord) error {
	d := ix.dur
	if d == nil {
		return nil
	}
	d.statsMu.Lock()
	w, closed := d.wal, d.closed
	d.statsMu.Unlock()
	if closed || w == nil {
		return errors.New("apex: index closed")
	}
	if err := w.Append(rec); err != nil {
		return fmt.Errorf("apex: journal %s: %w", rec.Op, err)
	}
	mJournaledWrites.Inc()
	return nil
}

// Persist attaches a durability directory to the index and writes the
// initial checkpoint. Subsequent writes are journaled; call Checkpoint to
// fold them into a new checkpoint, and RecoverDir to reopen after a crash.
func (ix *Index) Persist(dir string) error {
	return ix.persist(dir, nil)
}

func (ix *Index) persist(dir string, legacy *storage.FileRef) error {
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	if ix.dur != nil {
		return fmt.Errorf("apex: already durable in %s", ix.dur.dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ix.dur = &durableState{dir: dir}
	if err := ix.checkpointLocked(legacy); err != nil {
		ix.dur = nil
		return err
	}
	return nil
}

// Checkpoint folds the journaled writes into a fresh checkpoint: the
// published state is serialized next to the live one, a new WAL is started,
// and the manifest swap publishes both atomically. The old checkpoint's
// files are deleted only after the swap is durable; a crash anywhere leaves
// either checkpoint fully intact.
func (ix *Index) Checkpoint() error {
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	if ix.dur == nil {
		return errors.New("apex: index has no durability directory (call Persist)")
	}
	if ix.dur.closed {
		return errors.New("apex: index closed")
	}
	// Carry the recorded legacy-dump lineage across checkpoints.
	var legacy *storage.FileRef
	if ix.dur.manifest != nil {
		legacy = ix.dur.manifest.LegacyDump
	}
	return ix.checkpointLocked(legacy)
}

// checkpointLocked does the work of Checkpoint; callers hold maintMu.
func (ix *Index) checkpointLocked(legacy *storage.FileRef) error {
	start := time.Now()
	d := ix.dur
	idx, _, _ := ix.snapshot()
	gen := ix.gen.Load()
	seq := d.seq + 1
	graphName, structName, segName, walName := storage.CheckpointFileNames(seq)

	var gbuf bytes.Buffer
	if err := idx.Graph().Encode(&gbuf); err != nil {
		return fmt.Errorf("apex: checkpoint: graph: %w", err)
	}
	var sbuf bytes.Buffer
	if err := idx.EncodeStructure(&sbuf); err != nil {
		return fmt.Errorf("apex: checkpoint: structure: %w", err)
	}
	// Stream the extents one at a time: EachFrozenExtent decodes (or hands
	// over) a single extent's columns per call, so a compressed index never
	// materializes more than one flat extent while checkpointing.
	var segbuf bytes.Buffer
	sw, err := storage.NewSegmentWriter(&segbuf)
	if err != nil {
		return fmt.Errorf("apex: checkpoint: segment: %w", err)
	}
	err = idx.EachFrozenExtent(func(c core.ExtentColumns) error {
		return sw.Append(storage.SegmentExtent{ID: c.ID, ByFrom: c.ByFrom, ByTo: c.ByTo, Ends: c.Ends})
	})
	if err != nil {
		return fmt.Errorf("apex: checkpoint: %w", err)
	}
	if _, err := sw.Close(); err != nil {
		return fmt.Errorf("apex: checkpoint: segment: %w", err)
	}

	files := []struct {
		name string
		data []byte
	}{
		{graphName, gbuf.Bytes()},
		{structName, sbuf.Bytes()},
		{segName, segbuf.Bytes()},
	}
	refs := make([]storage.FileRef, len(files))
	for i, f := range files {
		if err := storage.WriteFileDurable(d.dir, f.name, f.data); err != nil {
			return fmt.Errorf("apex: checkpoint: %s: %w", f.name, err)
		}
		if refs[i], err = storage.RefFile(filepath.Join(d.dir, f.name)); err != nil {
			return fmt.Errorf("apex: checkpoint: %s: %w", f.name, err)
		}
	}

	newWAL, err := storage.CreateWAL(filepath.Join(d.dir, walName), ix.opts.NoSync)
	if err != nil {
		return fmt.Errorf("apex: checkpoint: wal: %w", err)
	}
	optsJSON, err := json.Marshal(ix.opts)
	if err != nil {
		newWAL.Close()
		return err
	}
	m := &storage.Manifest{
		Generation: gen,
		Checkpoint: seq,
		Graph:      refs[0],
		Structure:  refs[1],
		Segments:   []storage.FileRef{refs[2]},
		WAL:        walName,
		LegacyDump: legacy,
		Options:    optsJSON,
	}
	if err := storage.WriteManifest(d.dir, m); err != nil {
		newWAL.Close()
		return err
	}

	// The swap is durable: retire the previous checkpoint's files.
	d.statsMu.Lock()
	if d.wal != nil {
		d.wal.Close()
	}
	d.wal = newWAL
	d.seq = seq
	d.manifest = m
	d.checkpointBytes = refs[0].Bytes + refs[1].Bytes + refs[2].Bytes
	d.segmentBytes = refs[2].Bytes
	d.lastCheckpointNS = time.Now().UnixNano()
	d.statsMu.Unlock()
	if _, err := storage.SweepOrphans(d.dir, m); err != nil {
		return fmt.Errorf("apex: checkpoint: sweep: %w", err)
	}
	mCheckpoints.Inc()
	mCheckpointNS.Observe(time.Since(start).Nanoseconds())
	mSegmentBytes.Set(refs[2].Bytes)
	mCheckpointBytes.Set(refs[0].Bytes + refs[1].Bytes + refs[2].Bytes)
	return nil
}

// rotateWAL re-journals a replayed WAL tail into a fresh log file owned by
// this process and swaps the manifest to it, leaving the checkpoint files
// untouched. This is the cheap alternative to a full checkpoint on the
// recovery path: restart cost stays O(tail) instead of O(index), and the
// new log is appendable for subsequent journaled writes. The rotation
// consumes a sequence number so a later checkpoint can never collide with
// the live log's file name. Crash-safe like a checkpoint: until the
// manifest rename lands, the old manifest and old WAL still reign.
func (ix *Index) rotateWAL(tail []storage.WALRecord, noSync bool) error {
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	d := ix.dur
	seq := d.seq + 1
	_, _, _, walName := storage.CheckpointFileNames(seq)
	newWAL, err := storage.CreateWAL(filepath.Join(d.dir, walName), noSync)
	if err != nil {
		return fmt.Errorf("apex: recover: rotate wal: %w", err)
	}
	for _, rec := range tail {
		if err := newWAL.Append(rec); err != nil {
			newWAL.Close()
			return fmt.Errorf("apex: recover: rotate wal: %w", err)
		}
	}
	m := *d.manifest
	m.Generation = ix.gen.Load()
	m.Checkpoint = seq
	m.WAL = walName
	if err := storage.WriteManifest(d.dir, &m); err != nil {
		newWAL.Close()
		return fmt.Errorf("apex: recover: rotate wal: %w", err)
	}
	d.statsMu.Lock()
	if d.wal != nil {
		d.wal.Close()
	}
	d.wal = newWAL
	d.seq = seq
	d.manifest = &m
	d.statsMu.Unlock()
	// The old WAL is no longer referenced; sweep it with any other orphans.
	if _, err := storage.SweepOrphans(d.dir, &m); err != nil {
		return fmt.Errorf("apex: recover: sweep: %w", err)
	}
	mWALRotations.Inc()
	return nil
}

// Close releases the durability attachment (flushing and closing the WAL).
// A non-durable index closes as a no-op. The index itself remains queryable;
// further journaled writes fail.
func (ix *Index) Close() error {
	d := ix.dur
	if d == nil {
		return nil
	}
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.wal != nil {
		return d.wal.Close()
	}
	return nil
}

// Fingerprint renders a deterministic structural identity of the published
// index — summary graph, extents, and hash tree — for equality checks
// between a recovered index and a reference rebuild. Two indexes with equal
// fingerprints answer every query identically.
func (ix *Index) Fingerprint() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.idx.DumpGraph() + "\n--hash-tree--\n" + ix.idx.DumpHashTree()
}

// RecoverDir reopens a durable index directory: it loads the last published
// manifest, verifies every checkpoint file by size and CRC, decodes the
// graph, structure, and segment files, replays the WAL tail (each journaled
// write applied exactly as the original call was), and publishes the result.
// A torn WAL tail — the normal residue of a crash — is truncated and
// reported in DurabilityStats; corruption of any checkpoint file is an
// error.
//
// legacyDump optionally points at a monolithic Save dump. If the directory
// has no manifest yet, the dump is migrated: loaded, persisted as the first
// checkpoint, and recorded in the manifest lineage. If the directory HAS a
// manifest, the dump must be the recorded ancestor — a dump the manifest
// does not know, or one whose content diverged, is an error, never a silent
// fallback to either side.
//
// opts overrides the Options recorded in the manifest (nil keeps them).
func RecoverDir(dir, legacyDump string, opts *Options) (*Index, error) {
	st, err := storage.OpenDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			if legacyDump == "" {
				return nil, fmt.Errorf("%w: %s", ErrNoManifest, dir)
			}
			return migrateLegacyDump(dir, legacyDump)
		}
		return nil, err
	}
	if legacyDump != "" {
		if err := checkLegacyAgreement(st.Manifest, legacyDump); err != nil {
			return nil, err
		}
	}

	var o Options
	if opts != nil {
		o = *opts
	} else if len(st.Manifest.Options) > 0 {
		if err := json.Unmarshal(st.Manifest.Options, &o); err != nil {
			return nil, fmt.Errorf("apex: recover: manifest options: %w", err)
		}
	}

	ix, err := rebuildFromState(st, o)
	if err != nil {
		return nil, err
	}

	d := &durableState{
		dir:      dir,
		seq:      st.Manifest.Checkpoint,
		manifest: st.Manifest,
		replayed: int64(len(st.Tail)),
		segmentBytes: func() int64 {
			var n int64
			for _, s := range st.Manifest.Segments {
				n += s.Bytes
			}
			return n
		}(),
		tailTruncated: st.TailInfo.Truncated,
	}
	d.checkpointBytes = st.Manifest.Graph.Bytes + st.Manifest.Structure.Bytes + d.segmentBytes
	ix.dur = d
	if len(st.Tail) > 0 {
		// Rotate the WAL: re-journal the surviving tail into a fresh log
		// this process owns and swap the manifest to it. Log files are
		// written once and never appended to across process lifetimes (the
		// old file may end in a torn record), and rewriting a handful of
		// records keeps restart O(tail) — folding the tail into a full
		// checkpoint is deferred to the next explicit Checkpoint.
		if err := ix.rotateWAL(st.Tail, o.NoSync); err != nil {
			return nil, err
		}
	} else {
		// Nothing journaled since the checkpoint: recreate the (empty or
		// torn-to-empty) WAL in place and keep the manifest as-is.
		wal, err := storage.CreateWAL(st.WALPath(), o.NoSync)
		if err != nil {
			return nil, err
		}
		d.statsMu.Lock()
		d.wal = wal
		d.statsMu.Unlock()
	}
	return ix, nil
}

// OpenDirIndex is RecoverDir for callers with no legacy dump.
func OpenDirIndex(dir string, opts *Options) (*Index, error) {
	return RecoverDir(dir, "", opts)
}

// migrateLegacyDump seeds a fresh durability directory from a monolithic
// dump, recording the dump's identity in the manifest lineage so later
// opens can detect divergence.
func migrateLegacyDump(dir, legacyDump string) (*Index, error) {
	ref, err := storage.RefFile(legacyDump)
	if err != nil {
		return nil, fmt.Errorf("apex: recover: legacy dump: %w", err)
	}
	ix, err := LoadFile(legacyDump)
	if err != nil {
		return nil, err
	}
	if err := ix.persist(dir, &ref); err != nil {
		return nil, err
	}
	return ix, nil
}

// checkLegacyAgreement fails when the pointed-at dump is not the manifest's
// recorded ancestor, byte for byte.
func checkLegacyAgreement(m *storage.Manifest, legacyDump string) error {
	n, crc, err := storage.FileCRC(legacyDump)
	if err != nil {
		return fmt.Errorf("apex: recover: legacy dump %s: %w", legacyDump, err)
	}
	ld := m.LegacyDump
	if ld == nil {
		return fmt.Errorf("apex: recover: directory has a manifest but legacy dump %s is not in its lineage; refusing to guess which is current — open the directory without the dump, or remove the directory to re-migrate", legacyDump)
	}
	if ld.Bytes != n || ld.CRC != crc {
		return fmt.Errorf("apex: recover: manifest and legacy dump %s disagree (dump is %d bytes crc %08x, manifest recorded %d bytes crc %08x); refusing to guess which is current", legacyDump, n, crc, ld.Bytes, ld.CRC)
	}
	return nil
}

// rebuildFromState decodes the checkpoint files and replays the WAL tail,
// returning a published (but not yet durability-attached) index.
func rebuildFromState(st *storage.RecoveredState, o Options) (*Index, error) {
	gf, err := os.Open(st.GraphPath())
	if err != nil {
		return nil, err
	}
	g, err := xmlgraph.DecodeGraph(bufio.NewReader(gf))
	gf.Close()
	if err != nil {
		return nil, fmt.Errorf("apex: recover: %s: %w", st.Manifest.Graph.Name, err)
	}

	// Segments arrive flat or block-compressed depending on the options the
	// manifest recorded (storage.OpenDir decoded them accordingly); either
	// way each becomes a frozen EdgeSet served as-is. If the caller's
	// options override the recorded form, the decode's publication pass
	// converts every extent once.
	extents := make(map[int]*core.EdgeSet, len(st.Segments)+len(st.Packed))
	for _, seg := range st.Segments {
		if _, dup := extents[seg.ID]; dup {
			return nil, fmt.Errorf("apex: recover: duplicate extent %d across segments", seg.ID)
		}
		extents[seg.ID] = core.NewFrozenEdgeSet(seg.ByFrom, seg.ByTo, seg.Ends)
	}
	for _, seg := range st.Packed {
		if _, dup := extents[seg.ID]; dup {
			return nil, fmt.Errorf("apex: recover: duplicate extent %d across segments", seg.ID)
		}
		extents[seg.ID] = core.NewCompressedEdgeSet(seg.ByFrom, seg.ByTo, seg.Ends)
	}

	sf, err := os.Open(st.StructurePath())
	if err != nil {
		return nil, err
	}
	idx, err := core.DecodeStructureCompress(bufio.NewReader(sf), g, extents, o.CompressExtents)
	sf.Close()
	if err != nil {
		return nil, fmt.Errorf("apex: recover: %s: %w", st.Manifest.Structure.Name, err)
	}
	idx.SetWorkers(o.buildWorkers())

	// Replay the journaled writes exactly as the facade applied them —
	// per-operation RefreshData/Update, so node identity evolves identically
	// to the original process. The expensive endgame (data table, evaluator,
	// publication) happens once after the whole tail, which is the payoff of
	// journaling a burst instead of dumping per write.
	buildOpts := &xmlgraph.BuildOptions{
		IDAttrs:     o.IDAttrs,
		IDREFAttrs:  o.IDREFAttrs,
		IDREFSAttrs: o.IDREFSAttrs,
	}
	for i, rec := range st.Tail {
		if err := applyWALRecord(idx, g, rec, buildOpts); err != nil {
			return nil, fmt.Errorf("apex: recover: wal record %d (%s): %w", i, rec.Op, err)
		}
		mReplayedWrites.Inc()
	}

	dt, err := storage.BuildDataTable(g, 0, 64)
	if err != nil {
		return nil, err
	}
	ix := &Index{idx: idx, dt: dt, eval: newEvaluator(idx, dt, o), opts: o}
	ix.gen.Store(st.Manifest.Generation + uint64(len(st.Tail)))
	return ix, nil
}

// applyWALRecord applies one journaled write to a not-yet-published index.
// A record that fails to apply is corruption — it applied cleanly when it
// was journaled — so the caller surfaces the error instead of skipping.
func applyWALRecord(idx *core.APEX, g *xmlgraph.Graph, rec storage.WALRecord, buildOpts *xmlgraph.BuildOptions) error {
	switch rec.Op {
	case storage.WALInsert:
		if _, err := g.AppendFragment(rec.Parent, rec.Fragment, buildOpts); err != nil {
			return err
		}
		idx.RefreshData()
	case storage.WALDelete:
		removedAny := false
		for _, n := range rec.Targets {
			if g.Removed(n) {
				continue
			}
			if err := g.RemoveSubtree(n); err != nil {
				return err
			}
			removedAny = true
		}
		if !removedAny {
			return errors.New("journaled delete removed nothing")
		}
		idx.RefreshData()
	case storage.WALAdapt:
		idx.ExtractFrequentPaths(rec.Paths, rec.MinSup)
		idx.Update()
	default:
		return fmt.Errorf("unknown op %d", rec.Op)
	}
	return nil
}
