package apex

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPlanStatsRacingPublications races planned query evaluation against
// maintenance publications on one Index: readers keep joining deep paths
// (priming and probing each published evaluator's plan cache) while a writer
// adapts and mutates data. The race detector asserts the planner's locking;
// afterwards, quiescent checks pin generation stamping and result
// correctness against a fresh evaluation.
func TestPlanStatsRacingPublications(t *testing.T) {
	ix, err := Open(strings.NewReader(concurrentDoc(8)), &Options{
		IDREFAttrs: []string{"shelf"},
	})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"//library/shelf/book/title",
		"//shelf/book/year",
		"//library/shelf/book",
		"//library//year",
	}
	const (
		readers      = 6
		perGoro      = 120
		writerRounds = 20
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				q := queries[(r+i)%len(queries)]
				if _, err := ix.Query(q); err != nil {
					t.Errorf("Query(%s): %v", q, err)
					return
				}
				if i%13 == 0 {
					st := ix.PlanStats()
					if st.PlanHits < 0 || st.PlanMisses < 0 {
						t.Errorf("negative plan counters: %+v", st)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerRounds; i++ {
			if err := ix.AdaptTo([]string{"//shelf/book/title", "//library/shelf/book"}, 0.01); err != nil {
				t.Errorf("AdaptTo: %v", err)
				return
			}
			frag := fmt.Sprintf(`<extra><title>X%d</title></extra>`, i)
			if err := ix.Insert("//library/shelf", frag); err != nil && !strings.Contains(err.Error(), "matches") {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent: the published evaluator carries the facade's generation, and
	// a planned evaluation still agrees with a planner-off one.
	st := ix.PlanStats()
	if got, want := st.Generation, int64(ix.Generation()); got != want {
		t.Fatalf("PlanStats generation = %d, facade generation = %d", got, want)
	}
	for _, q := range queries {
		res, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		ev := ix.Evaluator()
		ev.DisablePlanner = true
		off, err := ix.Query(q)
		ev.DisablePlanner = false
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != off.Len() {
			t.Fatalf("%s: planner-on %d nodes, planner-off %d nodes", q, res.Len(), off.Len())
		}
	}
}
