package apex

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"apex/internal/metrics"
)

// TestPublicationAtomicity is the shadow-publication property test: readers
// race maintenance, and every read must observe either the complete
// pre-maintenance index or the complete post-maintenance one, never a blend.
// The writer inserts and removes a wing of exactly two books as ONE
// maintenance operation, so any intermediate book count is a torn read; the
// adaptation writer must not change results at all.
func TestPublicationAtomicity(t *testing.T) {
	ix, err := Open(strings.NewReader(concurrentDoc(4)), &Options{
		IDREFAttrs: []string{"shelf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ix.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	n := base.Len()

	const readers = 6
	const rounds = 20
	var wgReaders, wgWriters sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func() {
			defer wgReaders.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := ix.Query("//book/title")
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				// The wing adds exactly two books atomically: n+1 (or any
				// other count) means a reader saw a half-published index.
				if got := res.Len(); got != n && got != n+2 {
					t.Errorf("torn read: %d titles, want %d or %d", got, n, n+2)
					return
				}
			}
		}()
	}

	// Writer 1: data churn in two-book units.
	wgWriters.Add(1)
	go func() {
		defer wgWriters.Done()
		for i := 0; i < rounds; i++ {
			frag := fmt.Sprintf(`<wing><book><title>W%da</title></book><book><title>W%db</title></book></wing>`, i, i)
			if err := ix.Insert("/", frag); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if err := ix.Delete("//wing"); err != nil {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()

	// Writer 2: adaptation churn — reshapes the index without changing any
	// query answer, so the readers' invariant doubles as a correctness check
	// on the adapted structures.
	wgWriters.Add(1)
	go func() {
		defer wgWriters.Done()
		workloads := [][]string{
			{"//shelf/book/title", "//book/year"},
			{"//book/title"},
			{"//library/shelf/book"},
		}
		for i := 0; i < rounds; i++ {
			if err := ix.AdaptTo(workloads[i%len(workloads)], 0.01); err != nil {
				t.Errorf("AdaptTo: %v", err)
				return
			}
		}
	}()

	// Readers run for the full life of the churn, then drain.
	wgWriters.Wait()
	close(stop)
	wgReaders.Wait()
}

// TestReaderNotBlockedDuringShadowRebuild is the regression test pinning the
// tentpole guarantee: the index write lock is NOT held while a maintenance
// pass rebuilds its shadow. The shadow hook pauses each rebuild indefinitely;
// queries must still complete while it is paused.
func TestReaderNotBlockedDuringShadowRebuild(t *testing.T) {
	ops := []struct {
		name string
		run  func(ix *Index) error
	}{
		{"AdaptTo", func(ix *Index) error {
			return ix.AdaptTo([]string{"//shelf/book/title"}, 0.01)
		}},
		{"Insert", func(ix *Index) error {
			return ix.Insert("/", `<annex><book><title>A</title></book></annex>`)
		}},
		{"Delete", func(ix *Index) error {
			return ix.Delete("//book")
		}},
	}
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			ix, err := Open(strings.NewReader(concurrentDoc(2)), &Options{
				IDREFAttrs: []string{"shelf"},
			})
			if err != nil {
				t.Fatal(err)
			}
			entered := make(chan struct{})
			release := make(chan struct{})
			var stages []string
			ix.shadowHook = func(stage string) {
				stages = append(stages, stage)
				if stage == "rebuild" {
					close(entered)
					<-release
				}
			}
			done := make(chan error, 1)
			go func() { done <- op.run(ix) }()
			<-entered

			// The rebuild is now parked mid-maintenance. Queries and stats
			// must go through; with the old build-under-write-lock scheme
			// this deadlocks and the watchdog fires.
			qdone := make(chan error, 1)
			go func() {
				_, err := ix.Query("//shelf/book/title")
				_ = ix.Stats()
				qdone <- err
			}()
			select {
			case err := <-qdone:
				if err != nil {
					t.Fatalf("query during rebuild: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("reader blocked while maintenance rebuilds its shadow")
			}

			close(release)
			if err := <-done; err != nil {
				t.Fatalf("%s: %v", op.name, err)
			}
			if len(stages) < 2 || stages[0] != "rebuild" || stages[len(stages)-1] != "publish" {
				t.Fatalf("hook stages = %v, want rebuild ... publish", stages)
			}
		})
	}
}

// TestWorkloadLogBounded pins MaxWorkloadLog: the log never exceeds the
// bound, eviction drops the oldest entries first, and drops are counted on
// the apex.workload_log_evicted_total metric.
func TestWorkloadLogBounded(t *testing.T) {
	ix, err := Open(strings.NewReader(concurrentDoc(2)), &Options{
		IDREFAttrs:     []string{"shelf"},
		MaxWorkloadLog: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	evicted := metrics.Default.Counter("apex.workload_log_evicted_total")
	before := evicted.Value()

	queries := []string{"//shelf/book/title", "//book/year", "//shelf/book"}
	const total = 300
	for i := 0; i < total; i++ {
		if _, err := ix.Query(queries[i%len(queries)]); err != nil {
			t.Fatal(err)
		}
		if got := ix.Stats().LoggedQueries; got > 50 {
			t.Fatalf("log grew to %d entries, bound is 50", got)
		}
	}
	if got := ix.Stats().LoggedQueries; got == 0 || got > 50 {
		t.Fatalf("LoggedQueries = %d, want in (0, 50]", got)
	}
	// Oldest-first: the newest query is always retained.
	ix.logMu.Lock()
	last := ix.workload[len(ix.workload)-1].String()
	ix.logMu.Unlock()
	if want := "shelf.book"; last != want {
		t.Fatalf("newest log entry = %q, want %q", last, want)
	}
	dropped := evicted.Value() - before
	if kept := int64(ix.Stats().LoggedQueries); dropped+kept != total {
		t.Fatalf("evicted %d + kept %d != logged %d", dropped, kept, total)
	}

	// A negative bound disables eviction entirely.
	unbounded, err := Open(strings.NewReader(concurrentDoc(2)), &Options{
		IDREFAttrs:     []string{"shelf"},
		MaxWorkloadLog: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := unbounded.Query("//book/year"); err != nil {
			t.Fatal(err)
		}
	}
	if got := unbounded.Stats().LoggedQueries; got != 100 {
		t.Fatalf("unbounded log kept %d of 100", got)
	}
}

// TestQueryCostSurvivesPublication pins the carry-over: publishing a rebuilt
// index must not reset the facade's cumulative query-cost counters.
func TestQueryCostSurvivesPublication(t *testing.T) {
	ix, err := Open(strings.NewReader(concurrentDoc(2)), &Options{
		IDREFAttrs: []string{"shelf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.ResetQueryCost()
	for i := 0; i < 7; i++ {
		if _, err := ix.Query("//shelf/book/title"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.AdaptTo([]string{"//shelf/book/title"}, 0.01); err != nil {
		t.Fatal(err)
	}
	var got int64
	if _, err := fmt.Sscanf(ix.QueryCost(), "queries=%d", &got); err != nil {
		t.Fatalf("unparseable cost %q: %v", ix.QueryCost(), err)
	}
	if got < 7 {
		t.Fatalf("cost counters lost across publication: queries=%d, want >= 7", got)
	}
}
