// In-module bridge constructors: FromGraph and FromCore skip the XML parse
// but must hand back an Index indistinguishable from one Open built over the
// same document.
package apex

import (
	"strings"
	"testing"

	"apex/internal/core"
	"apex/internal/xmlgraph"
)

const bridgeDoc = `<lib><book><title>apex</title></book><book><title>paths</title></book></lib>`

func TestFromGraphMatchesOpen(t *testing.T) {
	viaOpen, err := Open(strings.NewReader(bridgeDoc), nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := xmlgraph.BuildString(bridgeDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaGraph, err := FromGraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//book/title", "//lib/book"} {
		a, err := viaOpen.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := viaGraph.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%s: Open found %d nodes, FromGraph %d", q, a.Len(), b.Len())
		}
	}
	if viaGraph.Graph() != g {
		t.Fatalf("FromGraph did not adopt the caller's graph")
	}
}

func TestFromCoreWrapsBuiltIndex(t *testing.T) {
	g, err := xmlgraph.BuildString(bridgeDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := core.BuildAPEX0(g)
	ix, err := FromCore(idx, &Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("//book/title over FromCore index found %d nodes, want 2", res.Len())
	}
	if got := idx.Workers(); got != 2 {
		t.Fatalf("FromCore did not propagate Parallelism to the core index: workers=%d", got)
	}
	// The wrapped index must still be adaptable and publish like any other.
	if err := ix.AdaptTo([]string{"//book/title"}, 0.01); err != nil {
		t.Fatal(err)
	}
	res, err = ix.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("post-adapt query found %d nodes, want 2", res.Len())
	}
}

func TestOptionsMinSupDefault(t *testing.T) {
	var o *Options
	if got := o.minSup(); got != 0.005 {
		t.Fatalf("nil options minSup = %v, want 0.005", got)
	}
	if got := (&Options{MinSup: -1}).minSup(); got != 0.005 {
		t.Fatalf("non-positive minSup = %v, want default 0.005", got)
	}
	if got := (&Options{MinSup: 0.2}).minSup(); got != 0.2 {
		t.Fatalf("explicit minSup = %v, want 0.2", got)
	}
}
