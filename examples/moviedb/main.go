// MovieDB walks through the paper's running example: the Figure 1 data
// graph, the initial index APEX⁰ of Figure 5, the adapted APEX of
// Figure 2 (required paths director.movie, @movie.movie, actor.name), and
// the strong DataGuide / 1-index of Figure 3, printing each structure.
//
// This example reaches below the public API on purpose — its whole point
// is to show the internal structures the paper draws.
package main

import (
	"fmt"
	"log"

	"apex/internal/core"
	"apex/internal/datagen"
	"apex/internal/dataguide"
	"apex/internal/oneindex"
	"apex/internal/xmlgraph"
)

func main() {
	g, err := datagen.MovieDB()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Figure 1: the MovieDB data graph ===")
	fmt.Println(g.Dump(0))

	fmt.Println("=== Figure 5: APEX0 (all length-1 paths) ===")
	a := core.BuildAPEX0(g)
	fmt.Print(a.DumpGraph())
	st := a.Stats()
	fmt.Printf("-> %d nodes, %d edges\n\n", st.Nodes, st.Edges)

	fmt.Println("=== Figure 2: APEX after the workload {director.movie, @movie.movie, actor.name} ===")
	workload := []xmlgraph.LabelPath{
		xmlgraph.ParseLabelPath("director.movie"),
		xmlgraph.ParseLabelPath("@movie.movie"),
		xmlgraph.ParseLabelPath("actor.name"),
	}
	a.ExtractFrequentPaths(workload, 1.0/3.0)
	a.Update()
	fmt.Print(a.DumpGraph())
	fmt.Println("\nhash tree H_APEX:")
	fmt.Print(a.DumpHashTree())
	st = a.Stats()
	fmt.Printf("-> %d nodes, %d edges\n\n", st.Nodes, st.Edges)

	// The query q1 of Section 4: //actor/name resolves with two hash
	// probes instead of the DataGuide's exhaustive navigation.
	names, covered := a.LookupAll(xmlgraph.ParseLabelPath("actor.name"))
	fmt.Printf("q1 = //actor/name: covered=%q, extents:", covered.String())
	for _, x := range names {
		fmt.Printf(" %s", x.Extent)
	}
	fmt.Println()
	fmt.Println()

	fmt.Println("=== Figure 3(a): strong DataGuide ===")
	dg := dataguide.Build(g)
	fmt.Print(dg.Dump())
	fmt.Printf("-> %d nodes, %d edges (larger than APEX on graph data)\n\n", dg.NumNodes(), dg.NumEdges())

	fmt.Println("=== Figure 3(b): 1-index ===")
	oi := oneindex.Build(g)
	fmt.Printf("-> %d blocks, %d edges\n", oi.NumNodes(), oi.NumEdges())
	for i := 0; i < oi.NumNodes(); i++ {
		b := oi.Block(i)
		fmt.Printf("block %d: %v\n", b.ID, b.Members)
	}
}
