// Quickstart: build an APEX index over a small document, run the three
// query shapes, adapt the index to the observed workload, and inspect the
// structure — the whole public API in one file.
package main

import (
	"fmt"
	"log"
	"strings"

	apex "apex"
)

const doc = `<library>
  <shelf topic="databases">
    <book id="b1" cites="b2"><title>Path Indexing</title><year>2002</year>
      <author><name>Min</name></author>
      <author><name>Chung</name></author>
    </book>
    <book id="b2"><title>Semistructured Data</title><year>1999</year>
      <author><name>Abiteboul</name></author>
    </book>
  </shelf>
  <shelf topic="systems">
    <book id="b3" cites="b1"><title>Buffer Management</title><year>2001</year>
      <author><name>Gray</name></author>
    </book>
  </shelf>
</library>`

func main() {
	// Open parses the XML and builds APEX⁰ (every label and every label
	// pair indexed). The cites attribute turns the document into a graph.
	ix, err := apex.Open(strings.NewReader(doc), &apex.Options{
		IDREFAttrs: []string{"cites"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// QTYPE1: partial-matching path — no need to know the path from the
	// root.
	res, err := ix.Query("//book/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("//book/title      ->", res.Values())

	// Dereference: follow the cites reference to the cited book's title.
	res, err = ix.Query("//book/@cites=>book/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("//book/@cites=>book/title ->", res.Values())

	// QTYPE2: descendant pair.
	res, err = ix.Query("//shelf//name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("//shelf//name     ->", res.Values())

	// QTYPE3: value predicate.
	res, err = ix.Query(`//book/year[text()="2002"]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(`//book/year[text()="2002"] ->`, res.Len(), "node(s)")

	// The index logged the path queries above; adapt to them. Frequently
	// used paths become directly addressable through the hash tree.
	before := ix.Stats()
	if err := ix.Adapt(0.3); err != nil {
		log.Fatal(err)
	}
	after := ix.Stats()
	fmt.Printf("adapted: %d -> %d summary nodes, %d required paths\n",
		before.Nodes, after.Nodes, len(after.RequiredPaths))
	fmt.Println("required paths:", after.RequiredPaths)
}
