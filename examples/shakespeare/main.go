// Shakespeare runs the paper's tree-structured scenario: a generated play
// corpus queried with partial-matching path expressions. It contrasts the
// paper's q1-style queries on the adaptive index against the brute-force
// answer, checks they agree, and persists the index to show the save/load
// cycle on a realistically sized document.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	apex "apex"
	"apex/internal/datagen"
)

func main() {
	doc := datagen.Generate(datagen.PlaysSchema(), 7, 30000)
	fmt.Printf("generated play corpus: %d KB of XML\n", len(doc)/1024)

	start := time.Now()
	ix, err := apex.Open(strings.NewReader(doc), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed in %v; %d summary nodes\n\n", time.Since(start).Round(time.Millisecond), ix.Stats().Nodes)

	queries := []string{
		"//SPEECH/SPEAKER",
		"//ACT/SCENE/TITLE",
		"//SCENE/SPEECH/LINE",
		"//PLAY/TITLE",
		"//PERSONAE/PERSONA",
		"//SPEECH//LINE",
	}
	for _, q := range queries {
		start := time.Now()
		res, err := ix.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %6d nodes in %8v\n", q, res.Len(), time.Since(start).Round(time.Microsecond))
	}

	// Adapt to the logged workload and re-run: frequent paths now resolve
	// through the hash tree without joins.
	// Each distinct query is 1 of 6 logged entries, so minSup must sit
	// below 1/6 for all of them to become required paths.
	if err := ix.Adapt(0.1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadapted to workload (%d required paths); re-running:\n", len(ix.Stats().RequiredPaths))
	ix.ResetQueryCost()
	for _, q := range queries[:5] {
		start := time.Now()
		res, err := ix.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %6d nodes in %8v\n", q, res.Len(), time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("cost:", ix.QueryCost())

	// Persist as a durable checkpoint directory and reopen: the restart
	// decodes frozen segment columns instead of re-deriving the index.
	dir, err := os.MkdirTemp("", "shakespeare-apex-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := ix.Persist(dir); err != nil {
		log.Fatal(err)
	}
	if st, ok := ix.DurabilityStats(); ok {
		fmt.Printf("\ncheckpointed to %s (%d KB, %d KB of segments)\n",
			dir, st.CheckpointBytes/1024, st.SegmentBytes/1024)
	}
	ix.Close()
	start = time.Now()
	re, err := apex.RecoverDir(dir, "", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	res, err := re.Query(`//SPEECH/SPEAKER`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %v; answers //SPEECH/SPEAKER with %d nodes\n",
		time.Since(start).Round(time.Millisecond), res.Len())
}
