// Updates demonstrates the data-update extension: documents grow after the
// index is built. Fragments are appended through the public API, the index
// refreshes its extents under the unchanged required-path set (the paper
// leaves data updates to future work; see DESIGN.md), and queries keep
// answering — including references from new data into old.
package main

import (
	"fmt"
	"log"
	"strings"

	apex "apex"
)

const seedDoc = `<ledger>
  <accounts>
    <account id="a1"><owner>Ada</owner><balance>100</balance></account>
    <account id="a2"><owner>Ben</owner><balance>250</balance></account>
  </accounts>
  <transfers/>
</ledger>`

func main() {
	ix, err := apex.Open(strings.NewReader(seedDoc), &apex.Options{
		IDREFAttrs: []string{"from", "to"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Make the hot paths required before the data grows.
	err = ix.AdaptTo([]string{
		"//transfer/amount",
		"//transfer/@from=>account/owner",
	}, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed seed document: %d summary nodes\n", ix.Stats().Nodes)

	// The ledger grows: each transfer references existing accounts.
	transfers := []string{
		`<transfer id="t1" from="a1" to="a2"><amount>30</amount><memo>rent</memo></transfer>`,
		`<transfer id="t2" from="a2" to="a1"><amount>5</amount><memo>coffee</memo></transfer>`,
		`<transfer id="t3" from="a1" to="a2"><amount>12</amount><memo>lunch</memo></transfer>`,
	}
	for _, frag := range transfers {
		if err := ix.Insert("//transfers", frag); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after %d inserts: %d summary nodes\n\n", len(transfers), ix.Stats().Nodes)

	show := func(q string) {
		res, err := ix.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s -> %v\n", q, res.Values())
	}
	// New data is indexed...
	show("//transfer/amount")
	// ...new labels too (memo never existed in the seed document)...
	show("//memo")
	// ...references from new data into old data resolve...
	show("//transfer/@from=>account/owner")
	// ...and value predicates see the new values.
	show(`//transfer/amount[text()="30"]`)

	// The workload log captured the queries above; adapting keeps the
	// index in step with how the grown document is actually used.
	if err := ix.Adapt(0.2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-adapted: %d required paths\n", len(ix.Stats().RequiredPaths))

	// Deletion: drop every transfer and watch the index follow. References
	// into deleted data stop dereferencing; the accounts remain.
	if err := ix.Delete("//transfers/transfer"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter deleting all transfers:")
	show("//transfer/amount")
	show("//account/owner")
}
