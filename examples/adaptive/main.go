// Adaptive demonstrates the paper's Figure 4 maintenance cycle on a
// shifting workload: the index is adapted to one query mix, the mix
// changes, and a second incremental adaptation re-shapes the index — no
// rebuild from scratch. Query costs are printed for each phase so the
// effect of adaptation is visible.
package main

import (
	"fmt"
	"log"
	"strings"

	apex "apex"
	"apex/internal/datagen"
)

func main() {
	// A moderately irregular synthetic document (the paper's FlixML).
	doc := datagen.Generate(datagen.FlixMLSchema(), 42, 4000)
	schema := datagen.FlixMLSchema()
	bo := schema.BuildOptions()
	ix, err := apex.Open(strings.NewReader(doc), &apex.Options{
		IDAttrs:     bo.IDAttrs,
		IDREFAttrs:  bo.IDREFAttrs,
		IDREFSAttrs: bo.IDREFSAttrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened FlixML document: %+v summary nodes\n\n", ix.Stats().Nodes)

	phase := func(name string, queries []string, repeat int) {
		ix.ResetQueryCost()
		for i := 0; i < repeat; i++ {
			for _, q := range queries {
				if _, err := ix.Query(q); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("%s:\n  %s\n", name, ix.QueryCost())
	}

	// Phase 1: review-centric workload, evaluated on APEX0.
	reviewQueries := []string{
		"//review/reviewer",
		"//review/reviewtext",
		"//review/score",
		"//reviews/review/score",
	}
	phase("phase 1 (review workload on APEX0)", reviewQueries, 5)

	// Adapt: the logged queries make review paths required.
	if err := ix.Adapt(0.1); err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("  adapted: %d summary nodes, %d required paths\n\n", st.Nodes, len(st.RequiredPaths))

	// The same workload after adaptation: answered via the hash tree's
	// fast path, with no joins.
	phase("phase 2 (review workload, adapted)", reviewQueries, 5)

	// The workload drifts to cast lookups.
	castQueries := []string{
		"//castmember/role",
		"//leadcast/castmember/role",
		"//castmember/@actor=>person/name",
	}
	phase("\nphase 3 (cast workload, still review-shaped index)", castQueries, 5)

	// Incremental re-adaptation: the review paths fall out, cast paths
	// move in; the index is updated in place.
	if err := ix.Adapt(0.1); err != nil {
		log.Fatal(err)
	}
	st = ix.Stats()
	fmt.Printf("  re-adapted: %d summary nodes, %d required paths\n\n", st.Nodes, len(st.RequiredPaths))

	phase("phase 4 (cast workload, re-adapted)", castQueries, 5)

	fmt.Println("\nfinal required paths:")
	for _, p := range ix.Stats().RequiredPaths {
		if strings.Contains(p, ".") {
			fmt.Println(" ", p)
		}
	}
}
