package apex

import (
	"context"
	"errors"
	"testing"
)

func TestGenerationBumpsPerPublication(t *testing.T) {
	ix := openMovie(t)
	if g := ix.Generation(); g != 0 {
		t.Fatalf("fresh index generation = %d, want 0", g)
	}
	if _, err := ix.Query("//actor/name"); err != nil {
		t.Fatal(err)
	}
	if g := ix.Generation(); g != 0 {
		t.Fatalf("generation moved on a read: %d", g)
	}
	if err := ix.Adapt(0.001); err != nil {
		t.Fatal(err)
	}
	if g := ix.Generation(); g != 1 {
		t.Fatalf("generation after Adapt = %d, want 1", g)
	}
	if err := ix.Insert("/", `<movie id="m9"><title>Nine</title></movie>`); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete("//movie/title"); err != nil {
		t.Fatal(err)
	}
	if g := ix.Generation(); g != 3 {
		t.Fatalf("generation after Insert+Delete = %d, want 3", g)
	}
}

func TestQueryGenConsistentWithResult(t *testing.T) {
	ix := openMovie(t)
	res, gen, err := ix.QueryGen(context.Background(), "//actor/name")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 || res.Len() != 2 {
		t.Fatalf("gen=%d len=%d, want generation-0 2-node result", gen, res.Len())
	}
	if err := ix.AdaptTo([]string{"//actor/name"}, 0.001); err != nil {
		t.Fatal(err)
	}
	if _, gen, err = ix.QueryGen(nil, "//actor/name"); err != nil || gen != 1 {
		t.Fatalf("gen=%d err=%v, want generation 1", gen, err)
	}
}

func TestQueryContextCanceled(t *testing.T) {
	ix := openMovie(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.QueryContext(ctx, "//actor/name"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, err := ix.ExplainContext(ctx, "//actor/name"); !errors.Is(err, context.Canceled) {
		t.Fatalf("explain err = %v, want context.Canceled", err)
	}
	// The canceled evaluation must not poison later queries.
	res, err := ix.Query("//actor/name")
	if err != nil || res.Len() != 2 {
		t.Fatalf("follow-up query: len=%d err=%v", res.Len(), err)
	}
}

func TestRecordWorkloadFeedsAdapt(t *testing.T) {
	ix := openMovie(t)
	if err := ix.RecordWorkload("//actor/name"); err != nil {
		t.Fatal(err)
	}
	if n := ix.Stats().LoggedQueries; n != 1 {
		t.Fatalf("logged = %d, want 1", n)
	}
	// Non-minable classes are a silent no-op; parse errors are not.
	if err := ix.RecordWorkload("//a//b"); err != nil {
		t.Fatal(err)
	}
	if n := ix.Stats().LoggedQueries; n != 1 {
		t.Fatalf("QTYPE2 was logged: %d", n)
	}
	if err := ix.RecordWorkload("///"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if err := ix.Adapt(0.001); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range ix.Stats().RequiredPaths {
		if p == "actor.name" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recorded workload not mined: %v", ix.Stats().RequiredPaths)
	}
}
